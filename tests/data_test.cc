#include <cmath>
#include <set>

#include <gtest/gtest.h>

#include "common/rng.h"
#include <cstdio>

#include "data/io.h"
#include "data/realworld_sim.h"
#include "data/synthetic.h"
#include "linalg/blas.h"

namespace fedsc {
namespace {

TEST(RandomBasisTest, Orthonormal) {
  Rng rng(1);
  for (auto [n, d] : {std::pair<int64_t, int64_t>{10, 3}, {5, 5}, {100, 1}}) {
    const Matrix basis = RandomOrthonormalBasis(n, d, &rng);
    EXPECT_EQ(basis.rows(), n);
    EXPECT_EQ(basis.cols(), d);
    EXPECT_TRUE(AllClose(Gram(basis), Matrix::Identity(d), 1e-10));
  }
}

TEST(SyntheticTest, ShapesLabelsAndNorms) {
  SyntheticOptions options;
  options.ambient_dim = 12;
  options.subspace_dim = 4;
  options.num_subspaces = 5;
  options.points_per_subspace = 9;
  auto data = GenerateUnionOfSubspaces(options);
  ASSERT_TRUE(data.ok());
  EXPECT_EQ(data->points.rows(), 12);
  EXPECT_EQ(data->points.cols(), 45);
  EXPECT_EQ(data->labels.size(), 45u);
  EXPECT_EQ(data->num_clusters, 5);
  EXPECT_EQ(data->bases.size(), 5u);
  for (int64_t j = 0; j < 45; ++j) {
    EXPECT_NEAR(Norm2(data->points.ColData(j), 12), 1.0, 1e-10);
  }
  // Each label appears exactly points_per_subspace times.
  std::vector<int64_t> counts(5, 0);
  for (int64_t l : data->labels) ++counts[static_cast<size_t>(l)];
  for (int64_t c : counts) EXPECT_EQ(c, 9);
}

TEST(SyntheticTest, NoiselessPointsLieInTheirSubspace) {
  SyntheticOptions options;
  options.ambient_dim = 15;
  options.subspace_dim = 3;
  options.num_subspaces = 4;
  options.points_per_subspace = 10;
  auto data = GenerateUnionOfSubspaces(options);
  ASSERT_TRUE(data.ok());
  for (int64_t j = 0; j < data->points.cols(); ++j) {
    const Matrix& basis =
        data->bases[static_cast<size_t>(data->labels[static_cast<size_t>(j)])];
    // Projection onto the basis reproduces the point.
    Vector coords = Gemv(Trans::kTrans, basis, data->points.Col(j));
    Vector reconstructed = Gemv(Trans::kNo, basis, coords);
    Axpy(-1.0, data->points.ColData(j), reconstructed.data(), 15);
    EXPECT_LT(Norm2(reconstructed.data(), 15), 1e-10);
  }
}

TEST(SyntheticTest, NoiseMovesPointsOffSubspace) {
  SyntheticOptions options;
  options.ambient_dim = 15;
  options.subspace_dim = 3;
  options.num_subspaces = 2;
  options.points_per_subspace = 10;
  options.noise_stddev = 0.1;
  auto data = GenerateUnionOfSubspaces(options);
  ASSERT_TRUE(data.ok());
  double max_off = 0.0;
  for (int64_t j = 0; j < data->points.cols(); ++j) {
    const Matrix& basis =
        data->bases[static_cast<size_t>(data->labels[static_cast<size_t>(j)])];
    Vector coords = Gemv(Trans::kTrans, basis, data->points.Col(j));
    Vector reconstructed = Gemv(Trans::kNo, basis, coords);
    Axpy(-1.0, data->points.ColData(j), reconstructed.data(), 15);
    max_off = std::max(max_off, Norm2(reconstructed.data(), 15));
  }
  EXPECT_GT(max_off, 1e-4);
}

TEST(SyntheticTest, UnbalancedCounts) {
  auto data = GenerateUnionOfSubspaces(10, 2, {5, 0, 12}, 0.0, true, 7);
  ASSERT_TRUE(data.ok());
  EXPECT_EQ(data->points.cols(), 17);
  EXPECT_EQ(data->num_clusters, 3);
}

TEST(SyntheticTest, Validation) {
  EXPECT_FALSE(GenerateUnionOfSubspaces(5, 6, {3}, 0.0, true, 1).ok());
  EXPECT_FALSE(GenerateUnionOfSubspaces(5, 2, {}, 0.0, true, 1).ok());
  EXPECT_FALSE(GenerateUnionOfSubspaces(5, 2, {0, 0}, 0.0, true, 1).ok());
  EXPECT_FALSE(GenerateUnionOfSubspaces(5, 2, {-1, 4}, 0.0, true, 1).ok());
  SyntheticOptions bad;
  bad.num_subspaces = 0;
  EXPECT_FALSE(GenerateUnionOfSubspaces(bad).ok());
}

TEST(SyntheticTest, SeedReproducibility) {
  SyntheticOptions options;
  options.seed = 123;
  auto a = GenerateUnionOfSubspaces(options);
  auto b = GenerateUnionOfSubspaces(options);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_TRUE(AllClose(a->points, b->points, 0.0));
  options.seed = 124;
  auto c = GenerateUnionOfSubspaces(options);
  ASSERT_TRUE(c.ok());
  EXPECT_FALSE(AllClose(a->points, c->points, 1e-6));
}

TEST(EmnistSimTest, UnbalancedHighDimensional) {
  EmnistSimOptions options;
  options.num_classes = 6;
  options.ambient_dim = 64;
  options.min_class_size = 10;
  options.max_class_size = 40;
  auto data = GenerateEmnistSim(options);
  ASSERT_TRUE(data.ok());
  EXPECT_EQ(data->num_clusters, 6);
  EXPECT_EQ(data->points.rows(), 64);
  std::vector<int64_t> counts(6, 0);
  for (int64_t l : data->labels) ++counts[static_cast<size_t>(l)];
  std::set<int64_t> distinct(counts.begin(), counts.end());
  EXPECT_GT(distinct.size(), 1u);  // unbalanced with overwhelming probability
  for (int64_t c : counts) {
    EXPECT_GE(c, 10);
    EXPECT_LE(c, 40);
  }
  EXPECT_FALSE(GenerateEmnistSim({.min_class_size = 0}).ok());
}

TEST(Coil100SimTest, NormalizedAndAugmented) {
  Coil100SimOptions options;
  options.num_classes = 5;
  options.ambient_dim = 48;
  options.images_per_class = 20;
  auto data = GenerateCoil100Sim(options);
  ASSERT_TRUE(data.ok());
  EXPECT_EQ(data->points.cols(), 100);
  for (int64_t j = 0; j < data->points.cols(); ++j) {
    EXPECT_NEAR(Norm2(data->points.ColData(j), 48), 1.0, 1e-10);
  }
  // Augmentation pushes points off the clean pose subspace.
  double max_off = 0.0;
  for (int64_t j = 0; j < data->points.cols(); ++j) {
    const Matrix& basis =
        data->bases[static_cast<size_t>(data->labels[static_cast<size_t>(j)])];
    Vector coords = Gemv(Trans::kTrans, basis, data->points.Col(j));
    Vector reconstructed = Gemv(Trans::kNo, basis, coords);
    Axpy(-1.0, data->points.ColData(j), reconstructed.data(), 48);
    max_off = std::max(max_off, Norm2(reconstructed.data(), 48));
  }
  EXPECT_GT(max_off, 1e-4);
  EXPECT_FALSE(GenerateCoil100Sim({.images_per_class = 0}).ok());
}

TEST(DatasetIoTest, CsvRoundTrip) {
  SyntheticOptions options;
  options.ambient_dim = 7;
  options.subspace_dim = 2;
  options.num_subspaces = 3;
  options.points_per_subspace = 5;
  options.seed = 55;
  auto original = GenerateUnionOfSubspaces(options);
  ASSERT_TRUE(original.ok());

  const std::string path = ::testing::TempDir() + "/fedsc_io_roundtrip.csv";
  ASSERT_TRUE(SaveDatasetCsv(path, *original).ok());
  auto loaded = LoadDatasetCsv(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->labels, original->labels);
  EXPECT_EQ(loaded->num_clusters, original->num_clusters);
  EXPECT_TRUE(AllClose(loaded->points, original->points, 1e-15));
  std::remove(path.c_str());
}

TEST(DatasetIoTest, LoadRejectsMalformedFiles) {
  const std::string dir = ::testing::TempDir();
  auto write_and_load = [&](const std::string& name,
                            const std::string& content) {
    const std::string path = dir + "/" + name;
    FILE* f = std::fopen(path.c_str(), "w");
    std::fputs(content.c_str(), f);
    std::fclose(f);
    auto result = LoadDatasetCsv(path);
    std::remove(path.c_str());
    return result.status();
  };
  EXPECT_FALSE(write_and_load("ragged.csv", "0,1,2\n1,3\n").ok());
  EXPECT_FALSE(write_and_load("badlabel.csv", "x,1,2\n").ok());
  EXPECT_FALSE(write_and_load("neglabel.csv", "-1,1,2\n").ok());
  EXPECT_FALSE(write_and_load("nofeat.csv", "0\n").ok());
  EXPECT_FALSE(write_and_load("empty.csv", "").ok());
  EXPECT_EQ(LoadDatasetCsv(dir + "/does_not_exist.csv").status().code(),
            StatusCode::kNotFound);
}

TEST(DatasetIoTest, SaveValidatesShape) {
  Dataset bad;
  bad.points = Matrix(3, 2);
  bad.labels = {0};  // mismatched
  EXPECT_FALSE(SaveDatasetCsv(::testing::TempDir() + "/bad.csv", bad).ok());
}

}  // namespace
}  // namespace fedsc
