// Byzantine defense (fed/defense.h) and robust k-means
// (cluster/kmeans.h KMeansRobustOptions): screening statistics, attack
// detection rates, determinism across thread counts, quorum interaction,
// and journal/report reconciliation.

#include "fed/defense.h"

#include <algorithm>
#include <cmath>
#include <set>
#include <vector>

#include "cluster/kmeans.h"
#include "common/journal.h"
#include "common/rng.h"
#include "core/fedsc.h"
#include "core/report.h"
#include "data/synthetic.h"
#include "fed/faults.h"
#include "fed/partition.h"
#include "gtest/gtest.h"
#include "metrics/clustering_metrics.h"

namespace fedsc {
namespace {

// ---------------------------------------------------------------------------
// Synthetic pools for direct Screen() tests: `num_devices` devices with
// `samples_per_device` unit samples each, honest devices drawing from one of
// `num_subspaces` shared d-dimensional subspaces.

struct Pool {
  Matrix samples;
  std::vector<int64_t> sample_device;
};

Pool MakeHonestPool(int64_t num_devices, int64_t samples_per_device,
                    int64_t ambient, int64_t num_subspaces, int64_t dim,
                    uint64_t seed) {
  Rng rng(seed);
  // Shared orthonormal-ish bases: random spans are almost surely full rank.
  std::vector<Matrix> bases;
  for (int64_t s = 0; s < num_subspaces; ++s) {
    Matrix basis(ambient, dim);
    for (int64_t c = 0; c < dim; ++c) basis.SetCol(c, rng.UnitSphere(ambient));
    bases.push_back(std::move(basis));
  }
  Pool pool;
  pool.samples = Matrix(ambient, num_devices * samples_per_device);
  int64_t next = 0;
  for (int64_t z = 0; z < num_devices; ++z) {
    const Matrix& basis = bases[static_cast<size_t>(z % num_subspaces)];
    for (int64_t s = 0; s < samples_per_device; ++s) {
      Vector coeff = rng.GaussianVector(dim);
      Vector sample(static_cast<size_t>(ambient), 0.0);
      for (int64_t c = 0; c < dim; ++c) {
        for (int64_t i = 0; i < ambient; ++i) {
          sample[static_cast<size_t>(i)] +=
              coeff[static_cast<size_t>(c)] * basis(i, c);
        }
      }
      double norm = 0.0;
      for (double v : sample) norm += v * v;
      norm = std::sqrt(norm);
      for (double& v : sample) v /= norm;
      pool.samples.SetCol(next++, sample);
      pool.sample_device.push_back(z);
    }
  }
  return pool;
}

void ReplaceWithRandom(Pool* pool, int64_t device, uint64_t seed) {
  Rng rng(seed);
  for (size_t j = 0; j < pool->sample_device.size(); ++j) {
    if (pool->sample_device[j] != device) continue;
    pool->samples.SetCol(static_cast<int64_t>(j),
                         rng.UnitSphere(pool->samples.rows()));
  }
}

DefenseOptions EnabledDefaults() {
  DefenseOptions options;
  options.enabled = true;
  return options;
}

// ---------------------------------------------------------------------------
// Options validation

TEST(DefenseOptionsTest, DefaultsValidate) {
  EXPECT_TRUE(ValidateDefenseOptions(DefenseOptions{}).ok());
  EXPECT_TRUE(DefensePlan::Create(EnabledDefaults()).ok());
}

TEST(DefenseOptionsTest, RejectsOutOfRangeThresholds) {
  DefenseOptions bad = EnabledDefaults();
  bad.coherence_mad_multiplier = -1.0;
  EXPECT_FALSE(ValidateDefenseOptions(bad).ok());

  bad = EnabledDefaults();
  bad.max_screen_support_fraction = 1.5;
  EXPECT_FALSE(ValidateDefenseOptions(bad).ok());

  bad = EnabledDefaults();
  bad.peer_rank = 0;
  EXPECT_FALSE(ValidateDefenseOptions(bad).ok());

  bad = EnabledDefaults();
  bad.min_pool_devices = 1;
  EXPECT_FALSE(ValidateDefenseOptions(bad).ok());

  bad = EnabledDefaults();
  bad.trim_fraction = 0.6;
  EXPECT_FALSE(ValidateDefenseOptions(bad).ok());

  bad = EnabledDefaults();
  bad.max_device_fraction = 0.0;
  EXPECT_FALSE(ValidateDefenseOptions(bad).ok());
}

TEST(DefenseOptionsTest, RunFedScRejectsInvalidDefenseOptions) {
  SyntheticOptions synth;
  synth.num_subspaces = 2;
  synth.points_per_subspace = 12;
  auto data = GenerateUnionOfSubspaces(synth);
  ASSERT_TRUE(data.ok());
  PartitionOptions partition;
  partition.num_devices = 3;
  auto fed = PartitionAcrossDevices(*data, partition);
  ASSERT_TRUE(fed.ok());
  FedScOptions options;
  options.defense.enabled = true;
  options.defense.trim_fraction = 0.9;
  auto result = RunFedSc(*fed, 2, options);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

// ---------------------------------------------------------------------------
// Screening behavior

TEST(ScreeningTest, UndersizedPoolIsSkipped) {
  Pool pool = MakeHonestPool(3, 2, 16, 2, 3, 0xD3F1ULL);
  auto plan = DefensePlan::Create(EnabledDefaults());
  ASSERT_TRUE(plan.ok());
  const ScreeningOutcome outcome =
      plan->Screen(pool.samples, pool.sample_device, 1);
  EXPECT_TRUE(outcome.skipped);
  EXPECT_EQ(outcome.screened_devices, 0);
  for (const DeviceScreenVerdict& verdict : outcome.verdicts) {
    EXPECT_FALSE(verdict.screened);
  }
}

TEST(ScreeningTest, CleanPoolScreensNothingAtDefaults) {
  for (uint64_t seed : {0x1ULL, 0x2ULL, 0x3ULL}) {
    Pool pool = MakeHonestPool(16, 4, 20, 4, 3, seed);
    auto plan = DefensePlan::Create(EnabledDefaults());
    ASSERT_TRUE(plan.ok());
    const ScreeningOutcome outcome =
        plan->Screen(pool.samples, pool.sample_device, 2);
    EXPECT_FALSE(outcome.skipped);
    EXPECT_EQ(outcome.screened_devices, 0) << "seed " << seed;
    for (const DeviceScreenVerdict& verdict : outcome.verdicts) {
      EXPECT_FALSE(verdict.screened)
          << "device " << verdict.device << ": " << verdict.statistic;
      EXPECT_TRUE(verdict.statistic.empty());
    }
  }
}

TEST(ScreeningTest, RandomByzantineDevicesAreScreened) {
  Pool pool = MakeHonestPool(16, 4, 20, 4, 3, 0xABCULL);
  ReplaceWithRandom(&pool, 5, 0xE71A01ULL);
  ReplaceWithRandom(&pool, 11, 0xE71A02ULL);
  auto plan = DefensePlan::Create(EnabledDefaults());
  ASSERT_TRUE(plan.ok());
  const ScreeningOutcome outcome =
      plan->Screen(pool.samples, pool.sample_device, 1);
  std::set<int64_t> screened;
  for (const DeviceScreenVerdict& verdict : outcome.verdicts) {
    if (verdict.screened) {
      screened.insert(verdict.device);
      EXPECT_FALSE(verdict.statistic.empty());
    }
  }
  EXPECT_TRUE(screened.count(5));
  EXPECT_TRUE(screened.count(11));
  // No honest device was taken down with them.
  for (int64_t z : screened) {
    EXPECT_TRUE(z == 5 || z == 11) << "false screen of device " << z;
  }
}

TEST(ScreeningTest, VerdictsAreBitIdenticalAcrossThreadCounts) {
  Pool pool = MakeHonestPool(16, 4, 20, 4, 3, 0xBEEFULL);
  ReplaceWithRandom(&pool, 3, 0x5EEDULL);
  auto plan = DefensePlan::Create(EnabledDefaults());
  ASSERT_TRUE(plan.ok());
  const ScreeningOutcome baseline =
      plan->Screen(pool.samples, pool.sample_device, 1);
  for (int num_threads : {2, 8}) {
    const ScreeningOutcome other =
        plan->Screen(pool.samples, pool.sample_device, num_threads);
    ASSERT_EQ(other.verdicts.size(), baseline.verdicts.size());
    EXPECT_EQ(other.coherence_threshold, baseline.coherence_threshold);
    EXPECT_EQ(other.screened_devices, baseline.screened_devices);
    for (size_t i = 0; i < baseline.verdicts.size(); ++i) {
      const DeviceScreenVerdict& a = baseline.verdicts[i];
      const DeviceScreenVerdict& b = other.verdicts[i];
      EXPECT_EQ(a.device, b.device);
      EXPECT_EQ(a.screened, b.screened);
      EXPECT_EQ(a.support, b.support);
      EXPECT_EQ(a.support_cut, b.support_cut);
      EXPECT_EQ(a.residual, b.residual);
      EXPECT_EQ(a.residual_cut, b.residual_cut);
      EXPECT_EQ(a.statistic, b.statistic);
    }
  }
}

// ---------------------------------------------------------------------------
// End-to-end attack detection through RunFedSc

struct Federation {
  Dataset data;
  FederatedDataset fed;
};

Federation MakeFederation(uint64_t seed) {
  SyntheticOptions synth;
  synth.ambient_dim = 20;
  synth.subspace_dim = 3;
  synth.num_subspaces = 6;
  synth.points_per_subspace = 64;  // 24 devices * 2 clusters * 8 points / 6
  synth.seed = seed;
  auto data = GenerateUnionOfSubspaces(synth);
  EXPECT_TRUE(data.ok());
  PartitionOptions partition;
  partition.num_devices = 24;
  partition.clusters_per_device = 2;
  partition.seed = seed ^ 0xABCDEF;
  auto fed = PartitionAcrossDevices(*data, partition);
  EXPECT_TRUE(fed.ok());
  return {std::move(data).value(), std::move(fed).value()};
}

std::set<int64_t> ByzantineDevices(const FaultPlanOptions& faults,
                                   int64_t num_devices) {
  auto plan = FaultPlan::Create(num_devices, faults);
  EXPECT_TRUE(plan.ok());
  std::set<int64_t> byzantine;
  for (int64_t z = 0; z < num_devices; ++z) {
    if (plan->ScheduleFor(z).payload == PayloadFault::kByzantine) {
      byzantine.insert(z);
    }
  }
  return byzantine;
}

FedScOptions AttackOptions(ByzantineMode mode, double rate) {
  FedScOptions options;
  options.faults.byzantine_rate = rate;
  options.faults.byzantine_mode = mode;
  options.defense.enabled = true;
  options.quorum = 0.5;
  return options;
}

// Detection contract, per mode at 20% Byzantine: every mode detects at
// least half of the attackers, and no honest device is ever screened.
// (Measured rates on this configuration: random and collude detect all
// attackers; mimic at 30 degrees detects all via the peer-residual screen.)
void ExpectDetection(ByzantineMode mode, double min_detection_rate) {
  const Federation f = MakeFederation(0xFEDD'0001ULL);
  FedScOptions options = AttackOptions(mode, 0.2);
  const std::set<int64_t> byzantine =
      ByzantineDevices(options.faults, f.fed.num_devices());
  ASSERT_FALSE(byzantine.empty());
  auto result = RunFedSc(f.fed, 6, options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  std::set<int64_t> screened;
  for (const DeviceReport& report : result->device_reports) {
    if (report.outcome == DeviceOutcome::kScreened) {
      screened.insert(report.device);
      EXPECT_FALSE(report.screen_statistic.empty());
      EXPECT_FALSE(report.status.ok());
      EXPECT_TRUE(byzantine.count(report.device))
          << "honest device " << report.device << " screened: "
          << report.screen_statistic << " (mode " << ByzantineModeName(mode)
          << ")";
    }
  }
  EXPECT_EQ(result->screened_devices,
            static_cast<int64_t>(screened.size()));
  const double detection = static_cast<double>(screened.size()) /
                           static_cast<double>(byzantine.size());
  EXPECT_GE(detection, min_detection_rate)
      << "mode " << ByzantineModeName(mode) << " screened "
      << screened.size() << "/" << byzantine.size();
  // Screened devices are failed devices: sentinel labels, listed in
  // failed_devices.
  for (int64_t z : screened) {
    EXPECT_NE(std::find(result->failed_devices.begin(),
                        result->failed_devices.end(), z),
              result->failed_devices.end());
    for (int64_t label : result->device_labels[static_cast<size_t>(z)]) {
      EXPECT_EQ(label, FedScResult::kFailedDeviceLabel);
    }
  }
}

TEST(DefenseEndToEndTest, DetectsRandomByzantineUploads) {
  ExpectDetection(ByzantineMode::kRandom, 0.5);
}

TEST(DefenseEndToEndTest, DetectsColludingByzantineUploads) {
  ExpectDetection(ByzantineMode::kCollude, 0.5);
}

TEST(DefenseEndToEndTest, DetectsSubspaceMimicryUploads) {
  ExpectDetection(ByzantineMode::kMimic, 0.5);
}

TEST(DefenseEndToEndTest, CleanRunScreensNothing) {
  const Federation f = MakeFederation(0xFEDD'0002ULL);
  FedScOptions options;
  options.defense.enabled = true;
  auto result = RunFedSc(f.fed, 6, options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->screened_devices, 0);
  for (const DeviceReport& report : result->device_reports) {
    EXPECT_NE(report.outcome, DeviceOutcome::kScreened);
  }
}

TEST(DefenseEndToEndTest, RunIsBitIdenticalAcrossThreadCounts) {
  const Federation f = MakeFederation(0xFEDD'0003ULL);
  FedScOptions base = AttackOptions(ByzantineMode::kCollude, 0.2);
  base.num_threads = 1;
  auto a = RunFedSc(f.fed, 6, base);
  ASSERT_TRUE(a.ok());
  for (int num_threads : {2, 8}) {
    FedScOptions options = base;
    options.num_threads = num_threads;
    auto b = RunFedSc(f.fed, 6, options);
    ASSERT_TRUE(b.ok());
    EXPECT_EQ(a->global_labels, b->global_labels);
    EXPECT_EQ(a->screened_devices, b->screened_devices);
    ASSERT_EQ(a->device_reports.size(), b->device_reports.size());
    for (size_t i = 0; i < a->device_reports.size(); ++i) {
      EXPECT_EQ(a->device_reports[i].outcome, b->device_reports[i].outcome);
      EXPECT_EQ(a->device_reports[i].screen_statistic,
                b->device_reports[i].screen_statistic);
    }
  }
}

TEST(DefenseEndToEndTest, ScreenedDevicesCountAgainstTheQuorum) {
  const Federation f = MakeFederation(0xFEDD'0004ULL);
  FedScOptions options = AttackOptions(ByzantineMode::kCollude, 0.2);
  options.faults.dropout_rate = 0.2;
  options.quorum = 0.95;  // screened + dropped cannot reach it
  auto result = RunFedSc(f.fed, 6, options);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kQuorumNotMet);
  EXPECT_NE(result.status().ToString().find("screened"), std::string::npos);
}

TEST(DefenseEndToEndTest, JournalAndReportReconcile) {
  const Federation f = MakeFederation(0xFEDD'0005ULL);
  FedScOptions options = AttackOptions(ByzantineMode::kCollude, 0.2);
  options.collect_report = true;
  EnableJournal(true);
  ResetJournal();
  auto result = RunFedSc(f.fed, 6, options);
  const std::vector<JournalEvent> events = SnapshotJournal();
  EnableJournal(false);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_GT(result->screened_devices, 0);

  // Every kScreened device report has exactly one defense_screened journal
  // event, and vice versa.
  std::set<int64_t> journaled;
  for (const JournalEvent& event : events) {
    if (event.type != "defense_screened") continue;
    EXPECT_TRUE(journaled.insert(event.device).second)
        << "duplicate defense_screened for device " << event.device;
    bool has_statistic = false;
    for (const auto& [key, value] : event.fields) {
      if (key == "statistic") has_statistic = !value.empty();
    }
    EXPECT_TRUE(has_statistic);
  }
  std::set<int64_t> reported;
  for (const DeviceReport& report : result->device_reports) {
    if (report.outcome == DeviceOutcome::kScreened) {
      reported.insert(report.device);
    }
  }
  EXPECT_EQ(journaled, reported);

  // The attached report carries the screened count, the per-device
  // statistic, and the bumped schema versions.
  ASSERT_NE(result->report, nullptr);
  EXPECT_EQ(result->report->screened_devices, result->screened_devices);
  const std::string json = RunReportJson(*result->report);
  EXPECT_NE(json.find("\"screened_devices\":" +
                      std::to_string(result->screened_devices)),
            std::string::npos);
  EXPECT_NE(json.find("\"outcome\":\"screened\""), std::string::npos);
  EXPECT_NE(json.find("\"screen_statistic\":\""), std::string::npos);
}

TEST(DefenseEndToEndTest, DefendedRunRecoversAccuracyUnderCollusion) {
  // The acceptance criterion: at 20% colluding Byzantine, the defended
  // run's covered-point accuracy lands within 5 points of the fault-free
  // run, and beats the undefended run under the same attack.
  const Federation f = MakeFederation(0xFEDD'0006ULL);
  const std::vector<int64_t> truth = f.fed.GlobalTruth();
  const auto accuracy_of = [&](const FedScResult& result) {
    std::vector<int64_t> covered_truth;
    std::vector<int64_t> covered_pred;
    for (size_t i = 0; i < result.global_labels.size(); ++i) {
      if (result.global_labels[i] == FedScResult::kFailedDeviceLabel) continue;
      covered_truth.push_back(truth[i]);
      covered_pred.push_back(result.global_labels[i]);
    }
    return ClusteringAccuracy(covered_truth, covered_pred);
  };

  auto clean = RunFedSc(f.fed, 6, FedScOptions{});
  ASSERT_TRUE(clean.ok());

  FedScOptions attacked = AttackOptions(ByzantineMode::kCollude, 0.2);
  attacked.defense.enabled = false;
  auto undefended = RunFedSc(f.fed, 6, attacked);
  ASSERT_TRUE(undefended.ok());

  attacked.defense.enabled = true;
  auto defended = RunFedSc(f.fed, 6, attacked);
  ASSERT_TRUE(defended.ok());

  const double clean_acc = accuracy_of(*clean);
  const double undefended_acc = accuracy_of(*undefended);
  const double defended_acc = accuracy_of(*defended);
  EXPECT_GE(defended_acc, clean_acc - 5.0);
  EXPECT_GT(defended_acc, undefended_acc);
}

// ---------------------------------------------------------------------------
// Robust k-means unit tests

TEST(RobustKMeansTest, CoordinateMedianCentersAreExactOnHandBuiltInput) {
  // One cluster of five 2-D points; the coordinate-wise median is (3, 30) —
  // untouched by the gross outlier at (100, 1000) once it is the trimmed
  // point... but even untrimmed, the median ignores it.
  Matrix points(2, 5);
  const double xs[] = {1, 2, 3, 4, 100};
  const double ys[] = {10, 20, 30, 40, 1000};
  for (int64_t j = 0; j < 5; ++j) {
    points(0, j) = xs[j];
    points(1, j) = ys[j];
  }
  KMeansOptions options;
  options.num_init = 1;
  options.robust.enabled = true;
  options.robust.center = KMeansCenter::kCoordinateMedian;
  auto result = KMeans(points, 1, options);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->centroids(0, 0), 3.0);
  EXPECT_EQ(result->centroids(1, 0), 30.0);
}

TEST(RobustKMeansTest, GeometricMedianResistsTheOutlier) {
  // Four points at the corners of a square around the origin plus a gross
  // outlier: the geometric median stays near the origin, the mean does not.
  Matrix points(2, 5);
  const double xs[] = {-1, 1, -1, 1, 500};
  const double ys[] = {-1, -1, 1, 1, 500};
  for (int64_t j = 0; j < 5; ++j) {
    points(0, j) = xs[j];
    points(1, j) = ys[j];
  }
  KMeansOptions options;
  options.num_init = 1;
  options.robust.enabled = true;
  options.robust.center = KMeansCenter::kGeometricMedian;
  auto result = KMeans(points, 1, options);
  ASSERT_TRUE(result.ok());
  EXPECT_LT(std::fabs(result->centroids(0, 0)), 2.0);
  EXPECT_LT(std::fabs(result->centroids(1, 0)), 2.0);
}

TEST(RobustKMeansTest, TrimmedAssignmentKeepsLabelsButNotInfluence) {
  // One tight cluster plus an extreme outlier, k = 1: the outlier cannot
  // capture its own center, so this isolates the trimming semantics. With
  // trim_fraction high enough to drop one point the outlier still receives
  // a label but the center is the untainted cluster mean. (At k >= 2 an
  // extreme outlier legitimately wins its own cluster — trimming bounds
  // influence on shared centers, it does not veto cluster formation.)
  Matrix points(1, 4);
  const double xs[] = {0.0, 0.1, -0.1, 1000.0};
  for (int64_t j = 0; j < 4; ++j) points(0, j) = xs[j];
  KMeansOptions options;
  options.num_init = 4;
  options.robust.enabled = true;
  options.robust.trim_fraction = 0.25 + 1e-9;  // trims exactly 1 point
  options.robust.center = KMeansCenter::kMean;
  auto result = KMeans(points, 1, options);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->labels.size(), 4u);
  // Every point has a label in range (including the trimmed outlier).
  for (int64_t label : result->labels) {
    EXPECT_EQ(label, 0);
  }
  // The center is the mean of {0, .1, -.1}: the trimmed outlier moved it by
  // nothing at all.
  EXPECT_NEAR(result->centroids(0, 0), 0.0, 1e-9);

  // Control: without trimming the outlier drags the mean to ~250.
  KMeansOptions classic;
  classic.num_init = 4;
  auto plain = KMeans(points, 1, classic);
  ASSERT_TRUE(plain.ok());
  EXPECT_GT(plain->centroids(0, 0), 100.0);
}

TEST(RobustKMeansTest, GroupInfluenceCapBoundsASingleGroup) {
  // Group 0 floods one location with many points; the cap at 0.5 keeps the
  // minority group's position relevant in the weighted-mean center.
  const int64_t flood = 8;
  Matrix points(1, flood + 2);
  std::vector<int64_t> group;
  for (int64_t j = 0; j < flood; ++j) {
    points(0, j) = 1.0;
    group.push_back(0);
  }
  points(0, flood) = 0.0;
  points(0, flood + 1) = 0.0;
  group.push_back(1);
  group.push_back(2);
  KMeansOptions options;
  options.num_init = 1;
  options.robust.enabled = true;
  options.robust.center = KMeansCenter::kMean;
  options.robust.max_group_fraction = 0.5;
  options.robust.point_group = group;
  auto result = KMeans(points, 1, options);
  ASSERT_TRUE(result.ok());
  // Uncapped mean would be 0.8; capped, group 0 carries at most half the
  // mass, so the center is at most 0.5 + slack.
  EXPECT_LE(result->centroids(0, 0), 0.6);
}

TEST(RobustKMeansTest, RejectsInvalidRobustOptions) {
  Matrix points(1, 4);
  for (int64_t j = 0; j < 4; ++j) points(0, j) = static_cast<double>(j);
  KMeansOptions options;
  options.robust.enabled = true;
  options.robust.trim_fraction = 0.7;
  EXPECT_FALSE(KMeans(points, 2, options).ok());

  options = KMeansOptions{};
  options.robust.enabled = true;
  options.robust.max_group_fraction = 0.0;
  EXPECT_FALSE(KMeans(points, 2, options).ok());

  options = KMeansOptions{};
  options.robust.enabled = true;
  options.robust.point_group = {0, 1};  // wrong size
  EXPECT_FALSE(KMeans(points, 2, options).ok());
}

TEST(RobustKMeansTest, DisabledRobustOptionsReproduceClassicKMeans) {
  Rng rng(0xC1A551CULL);
  Matrix points(3, 30);
  for (int64_t j = 0; j < 30; ++j) points.SetCol(j, rng.UnitSphere(3));
  KMeansOptions classic;
  auto a = KMeans(points, 4, classic);
  ASSERT_TRUE(a.ok());
  KMeansOptions with_struct = classic;  // robust present but disabled
  with_struct.robust.trim_fraction = 0.0;
  auto b = KMeans(points, 4, with_struct);
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->labels, b->labels);
  EXPECT_EQ(a->inertia, b->inertia);
}

}  // namespace
}  // namespace fedsc
