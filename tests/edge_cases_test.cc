// Solver-quality and edge-case tests: KKT optimality of the ADMM Lasso
// solution, numerically extreme inputs for the factorizations, and boundary
// parameter values across modules.

#include <cmath>

#include <gtest/gtest.h>

#include "cluster/spectral.h"
#include "common/rng.h"
#include "data/synthetic.h"
#include "fed/kfed.h"
#include "fed/partition.h"
#include "linalg/blas.h"
#include "linalg/eig.h"
#include "linalg/svd.h"
#include "sc/affinity.h"
#include "sc/ssc_admm.h"

namespace fedsc {
namespace {

TEST(SscKktTest, AdmmSolutionSatisfiesLassoStationarity) {
  // KKT for min ||c||_1 + lambda/2 ||x_i - X c||^2 (c_i = 0):
  //   lambda * x_j^T (x_i - X c) == sign(c_j)        for c_j != 0
  //   |lambda * x_j^T (x_i - X c)| <= 1              for c_j == 0, j != i.
  SyntheticOptions synth;
  synth.ambient_dim = 20;
  synth.subspace_dim = 3;
  synth.num_subspaces = 3;
  synth.points_per_subspace = 20;
  synth.seed = 404;
  auto data = GenerateUnionOfSubspaces(synth);
  ASSERT_TRUE(data.ok());
  const Matrix& x = data->points;
  const int64_t num_points = x.cols();

  SscAdmmOptions options;
  options.max_iterations = 2000;
  options.tol = 1e-8;
  options.drop_tol = 0.0;  // keep every coefficient for the KKT check
  auto coeffs = SscSelfExpression(x, options);
  ASSERT_TRUE(coeffs.ok());
  const Matrix c = coeffs->ToDense();
  const double lambda = SscLambda(x, options.alpha);

  const int64_t n = x.rows();
  Vector residual(static_cast<size_t>(n), 0.0);
  int checked_support = 0;
  for (int64_t i = 0; i < num_points; ++i) {
    // residual = x_i - X c_i
    std::copy(x.ColData(i), x.ColData(i) + n, residual.begin());
    Gemv(Trans::kNo, -1.0, x, c.ColData(i), 1.0, residual.data());
    for (int64_t j = 0; j < num_points; ++j) {
      if (j == i) continue;
      const double gradient =
          lambda * Dot(x.ColData(j), residual.data(), n);
      const double cj = c(j, i);
      if (std::fabs(cj) > 1e-5) {
        EXPECT_NEAR(gradient, cj > 0 ? 1.0 : -1.0, 2e-2)
            << "support entry (" << j << ", " << i << ")";
        ++checked_support;
      } else {
        EXPECT_LE(std::fabs(gradient), 1.0 + 2e-2)
            << "off-support entry (" << j << ", " << i << ")";
      }
    }
  }
  EXPECT_GT(checked_support, num_points);  // solutions are not all-zero
}

TEST(SvdEdgeTest, ExtremeScalesPreserveRelativeAccuracy) {
  Rng rng(405);
  Matrix a(8, 5);
  for (int64_t j = 0; j < 5; ++j) {
    for (int64_t i = 0; i < 8; ++i) a(i, j) = rng.Gaussian();
  }
  auto base = JacobiSvd(a);
  ASSERT_TRUE(base.ok());
  for (double scale : {1e-120, 1e120}) {
    Matrix scaled = a;
    scaled *= scale;
    auto svd = JacobiSvd(scaled);
    ASSERT_TRUE(svd.ok());
    for (size_t i = 0; i < svd->s.size(); ++i) {
      EXPECT_NEAR(svd->s[i] / scale, base->s[i],
                  1e-9 * base->s[0]);
    }
  }
}

TEST(SvdEdgeTest, RepeatedSingularValues) {
  // An orthogonal matrix has all singular values exactly 1.
  Rng rng(406);
  const Matrix q = RandomOrthonormalBasis(9, 9, &rng);
  auto svd = JacobiSvd(q);
  ASSERT_TRUE(svd.ok());
  for (double s : svd->s) EXPECT_NEAR(s, 1.0, 1e-10);
  EXPECT_TRUE(AllClose(Gram(svd->u), Matrix::Identity(9), 1e-9));
}

TEST(EigEdgeTest, DiagonalAndConstantMatrices) {
  Matrix diag(4, 4);
  diag(0, 0) = -3.0;
  diag(1, 1) = 7.0;
  diag(2, 2) = 0.0;
  diag(3, 3) = 2.5;
  auto eig = SymmetricEigen(diag);
  ASSERT_TRUE(eig.ok());
  EXPECT_NEAR(eig->values[0], -3.0, 1e-12);
  EXPECT_NEAR(eig->values[3], 7.0, 1e-12);

  // all-ones matrix: eigenvalues {n, 0, ..., 0}.
  Matrix ones(5, 5);
  ones.Fill(1.0);
  auto ones_eig = SymmetricEigenvalues(ones);
  ASSERT_TRUE(ones_eig.ok());
  EXPECT_NEAR(ones_eig->back(), 5.0, 1e-10);
  for (size_t i = 0; i + 1 < ones_eig->size(); ++i) {
    EXPECT_NEAR((*ones_eig)[i], 0.0, 1e-10);
  }
}

TEST(SpectralEdgeTest, SingleClusterAndAllSingletons) {
  Matrix w(6, 6);
  for (int64_t i = 0; i < 6; ++i) {
    for (int64_t j = 0; j < 6; ++j) {
      if (i != j) w(i, j) = 1.0;
    }
  }
  auto one = SpectralCluster(w, 1);
  ASSERT_TRUE(one.ok());
  for (int64_t l : one->labels) EXPECT_EQ(l, 0);

  auto all = SpectralCluster(w, 6);
  ASSERT_TRUE(all.ok());
  EXPECT_EQ(all->labels.size(), 6u);
}

TEST(SparsifyEdgeTest, AllZeroAndSingleEntryCoefficients) {
  EXPECT_EQ(SparsifyCoefficients(Matrix(3, 3), 0).nnz(), 0);
  Matrix c(2, 2);
  c(1, 0) = 0.5;
  const SparseMatrix s = SparsifyCoefficients(c, 5);
  EXPECT_EQ(s.nnz(), 1);
  EXPECT_EQ(AffinityFromCoefficients(s).nnz(), 2);
}

TEST(KFedEdgeTest, PcaDimExceedingPointsStillRuns) {
  Rng rng(407);
  Dataset data;
  data.num_clusters = 2;
  data.points = Matrix(16, 40);
  for (int64_t j = 0; j < 40; ++j) {
    const int64_t c = j < 20 ? 0 : 1;
    for (int64_t i = 0; i < 16; ++i) {
      data.points(i, j) = rng.Gaussian() + (c == 0 ? 8.0 : -8.0);
    }
    data.labels.push_back(c);
  }
  PartitionOptions partition;
  partition.num_devices = 10;  // only ~4 points per device
  auto fed = PartitionAcrossDevices(data, partition);
  ASSERT_TRUE(fed.ok());
  KFedOptions options;
  options.local_k = 2;
  options.pca_dim = 100;  // exceeds both ambient dim and device point count
  auto result = RunKFed(*fed, 2, options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->global_labels.size(), 40u);
}

TEST(RngEdgeTest, UniformIntOfOneAndHugeRange) {
  Rng rng(408);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.UniformInt(1), 0);
  const int64_t huge = int64_t{1} << 62;
  for (int i = 0; i < 10; ++i) {
    const int64_t v = rng.UniformInt(huge);
    EXPECT_GE(v, 0);
    EXPECT_LT(v, huge);
  }
}

TEST(MatrixEdgeTest, ZeroSizedOperations) {
  Matrix empty(0, 0);
  EXPECT_EQ(empty.Transposed().size(), 0);
  EXPECT_EQ(empty.FrobeniusNorm(), 0.0);
  Matrix tall(5, 0);
  EXPECT_EQ(tall.NormalizeColumns(), 0);
  const Matrix product = MatMul(Matrix(3, 0), Matrix(0, 4));
  EXPECT_EQ(product.rows(), 3);
  EXPECT_EQ(product.cols(), 4);
  EXPECT_EQ(product.MaxAbs(), 0.0);
}

}  // namespace
}  // namespace fedsc
