// Fault-tolerance suite: deterministic fault injection (fed/faults.h), the
// retrying channel (fed/network.h), and graceful degradation of RunFedSc
// under partial participation (core/fedsc.h).
//
// The acceptance criteria this file proves:
//   (a) the same seed + FaultPlan produce bit-identical outcomes (labels,
//       reports, comm stats, deterministic metrics) at any thread count;
//   (b) a 30% dropout round with quorum 0.5 completes, reports the dropped
//       devices, and keeps the surviving points' accuracy close to the
//       fault-free run;
//   (c) every corrupted-payload class is quarantined — the pipeline never
//       crashes and never emits NaN or out-of-range labels;
//   (d) a quorum violation returns a typed Status instead of crashing.

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/metrics.h"
#include "core/fedsc.h"
#include "data/synthetic.h"
#include "fed/faults.h"
#include "fed/network.h"
#include "fed/partition.h"
#include "linalg/blas.h"
#include "metrics/clustering_metrics.h"

namespace fedsc {
namespace {

// A small federation with redundant cluster coverage, so dropping a third of
// the devices still leaves every subspace represented somewhere.
Result<FederatedDataset> MakeFederation(uint64_t seed) {
  SyntheticOptions synth;
  synth.ambient_dim = 24;
  synth.subspace_dim = 3;
  synth.num_subspaces = 4;
  synth.points_per_subspace = 36;
  synth.seed = seed;
  FEDSC_ASSIGN_OR_RETURN(Dataset data, GenerateUnionOfSubspaces(synth));
  PartitionOptions partition;
  partition.num_devices = 12;
  partition.clusters_per_device = 2;
  partition.seed = seed ^ 0xABCDEF;
  return PartitionAcrossDevices(data, partition);
}

// Unit-norm upload columns, the shape every honest device produces.
Matrix UnitColumns(int64_t n, int64_t cols, uint64_t seed) {
  Rng rng(seed);
  Matrix m(n, cols);
  for (int64_t j = 0; j < cols; ++j) m.SetCol(j, rng.UnitSphere(n));
  return m;
}

// Same helper as trace_test.cc: the deterministic slices of a metrics
// snapshot as a comparable string.
std::string DeterministicFingerprint(const MetricsSnapshot& snapshot) {
  std::ostringstream os;
  os.precision(17);
  for (const auto& [name, value] : snapshot.counters) {
    os << name << "=" << value << "\n";
  }
  for (const auto& [name, value] : snapshot.gauges) {
    os << name << "=" << value << "\n";
  }
  for (const auto& [name, h] : snapshot.histograms) {
    os << name << ": count=" << h.count << " sum=" << h.sum
       << " min=" << h.min << " max=" << h.max << "\n";
  }
  return os.str();
}

FaultPlanOptions MixedFaults() {
  FaultPlanOptions faults;
  faults.dropout_rate = 0.2;
  faults.straggler_rate = 0.2;
  faults.straggler_mean_delay_ms = 800.0;
  faults.transient_rate = 0.4;
  faults.corrupt_rate = 0.2;
  faults.byzantine_rate = 0.1;
  faults.seed = 0xFA17'0001ULL;
  return faults;
}

TEST(FaultPlanTest, ValidationRejectsBadOptions) {
  FaultPlanOptions options;
  options.dropout_rate = -0.1;
  EXPECT_FALSE(FaultPlan::Create(4, options).ok());
  options.dropout_rate = 1.5;
  EXPECT_FALSE(FaultPlan::Create(4, options).ok());
  options.dropout_rate = 0.0;
  options.straggler_rate = 0.5;
  options.straggler_mean_delay_ms = 0.0;
  EXPECT_FALSE(FaultPlan::Create(4, options).ok());
  options.straggler_mean_delay_ms = 100.0;
  options.max_transient_failures = -1;
  EXPECT_FALSE(FaultPlan::Create(4, options).ok());
  options.max_transient_failures = 2;
  EXPECT_FALSE(FaultPlan::Create(-1, options).ok());
  EXPECT_TRUE(FaultPlan::Create(4, options).ok());
}

TEST(FaultPlanTest, DefaultPlanIsFaultFree) {
  const FaultPlan plan;
  EXPECT_FALSE(plan.active());
  const DeviceFaultSchedule schedule = plan.ScheduleFor(17);
  EXPECT_FALSE(schedule.dropped);
  EXPECT_FALSE(schedule.straggler);
  EXPECT_EQ(schedule.transient_failures, 0);
  EXPECT_EQ(schedule.payload, PayloadFault::kNone);
  EXPECT_EQ(plan.UplinkDelayMs(17, 1), 0);
  const Matrix upload = UnitColumns(5, 3, 11);
  EXPECT_TRUE(AllClose(plan.ApplyPayloadFault(17, upload), upload, 0.0));
}

TEST(FaultPlanTest, FingerprintIsDeterministicAndSeedSensitive) {
  FaultPlanOptions options = MixedFaults();
  auto a = FaultPlan::Create(32, options);
  auto b = FaultPlan::Create(32, options);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_TRUE(a->active());
  EXPECT_EQ(a->Fingerprint(), b->Fingerprint());

  options.seed ^= 1;
  auto c = FaultPlan::Create(32, options);
  ASSERT_TRUE(c.ok());
  EXPECT_NE(a->Fingerprint(), c->Fingerprint());
}

TEST(FaultPlanTest, ScheduleIsAPureFunctionOfSeedAndDevice) {
  // Growing the federation must not reshuffle existing devices' fates:
  // device z's schedule depends only on (seed, z).
  const FaultPlanOptions options = MixedFaults();
  auto small = FaultPlan::Create(8, options);
  auto large = FaultPlan::Create(64, options);
  ASSERT_TRUE(small.ok());
  ASSERT_TRUE(large.ok());
  for (int64_t z = 0; z < 8; ++z) {
    const DeviceFaultSchedule s = small->ScheduleFor(z);
    const DeviceFaultSchedule l = large->ScheduleFor(z);
    EXPECT_EQ(s.dropped, l.dropped) << z;
    EXPECT_EQ(s.straggler, l.straggler) << z;
    EXPECT_EQ(s.transient_failures, l.transient_failures) << z;
    EXPECT_EQ(s.payload, l.payload) << z;
    EXPECT_EQ(s.payload_seed, l.payload_seed) << z;
    EXPECT_EQ(s.delay_seed, l.delay_seed) << z;
  }
}

TEST(FaultPlanTest, RateOneSchedulesEveryDevice) {
  FaultPlanOptions options;
  options.dropout_rate = 1.0;
  auto plan = FaultPlan::Create(6, options);
  ASSERT_TRUE(plan.ok());
  for (int64_t z = 0; z < 6; ++z) EXPECT_TRUE(plan->ScheduleFor(z).dropped);

  FaultPlanOptions byzantine;
  byzantine.byzantine_rate = 1.0;
  auto adversarial = FaultPlan::Create(6, byzantine);
  ASSERT_TRUE(adversarial.ok());
  for (int64_t z = 0; z < 6; ++z) {
    EXPECT_EQ(adversarial->ScheduleFor(z).payload, PayloadFault::kByzantine);
  }
}

TEST(PayloadFaultTest, CorruptionCyclesThroughEveryDetectableClass) {
  FaultPlanOptions options;
  options.corrupt_rate = 1.0;
  auto plan = FaultPlan::Create(5, options);
  ASSERT_TRUE(plan.ok());
  std::set<PayloadFault> classes;
  for (int64_t z = 0; z < 5; ++z) classes.insert(plan->ScheduleFor(z).payload);
  EXPECT_EQ(classes.size(), 5u);
  EXPECT_EQ(classes.count(PayloadFault::kNone), 0u);
  EXPECT_EQ(classes.count(PayloadFault::kByzantine), 0u);
}

// Acceptance criterion (c), unit level: apply every payload fault to an
// honest upload and push the result through ValidateUpload. Detectable
// classes are quarantined (per column or as a whole upload); Byzantine
// passes — it is indistinguishable from honest data by construction.
TEST(PayloadFaultTest, ValidationQuarantinesEveryDetectableClass) {
  const int64_t n = 8;
  const int64_t cols = 6;
  const Matrix upload = UnitColumns(n, cols, 42);
  UploadValidationOptions validation;

  FaultPlanOptions options;
  options.corrupt_rate = 1.0;
  auto plan = FaultPlan::Create(5, options);
  ASSERT_TRUE(plan.ok());
  for (int64_t z = 0; z < 5; ++z) {
    const PayloadFault fault = plan->ScheduleFor(z).payload;
    const Matrix received = plan->ApplyPayloadFault(z, upload);
    auto verdict = ValidateUpload(received, n, validation);
    switch (fault) {
      case PayloadFault::kTruncate:
        // Fewer columns arrive, but each is an honest sample: accepted.
        ASSERT_TRUE(verdict.ok());
        EXPECT_LT(received.cols(), cols);
        EXPECT_EQ(verdict->accepted.cols(), received.cols());
        EXPECT_TRUE(verdict->quarantined.empty());
        break;
      case PayloadFault::kDuplicate:
        ASSERT_TRUE(verdict.ok());
        EXPECT_GT(received.cols(), cols);
        EXPECT_EQ(verdict->accepted.cols(), received.cols());
        break;
      case PayloadFault::kCorruptNan: {
        ASSERT_TRUE(verdict.ok());
        EXPECT_FALSE(verdict->quarantined.empty());
        ASSERT_EQ(verdict->reasons.size(), verdict->quarantined.size());
        for (const std::string& reason : verdict->reasons) {
          EXPECT_NE(reason.find("non-finite"), std::string::npos);
        }
        // Whatever survived is finite.
        for (int64_t j = 0; j < verdict->accepted.cols(); ++j) {
          for (int64_t i = 0; i < n; ++i) {
            EXPECT_TRUE(std::isfinite(verdict->accepted(i, j)));
          }
        }
        break;
      }
      case PayloadFault::kCorruptDim:
        // The whole upload is meaningless in the federation's space.
        EXPECT_FALSE(verdict.ok());
        EXPECT_EQ(verdict.status().code(), StatusCode::kInvalidArgument);
        break;
      case PayloadFault::kCorruptNorm:
        ASSERT_TRUE(verdict.ok());
        EXPECT_EQ(verdict->accepted.cols(), 0);
        EXPECT_EQ(static_cast<int64_t>(verdict->quarantined.size()),
                  received.cols());
        break;
      default:
        FAIL() << "unexpected fault " << PayloadFaultName(fault);
    }
  }

  FaultPlanOptions byz;
  byz.byzantine_rate = 1.0;
  auto adversarial = FaultPlan::Create(1, byz);
  ASSERT_TRUE(adversarial.ok());
  const Matrix received = adversarial->ApplyPayloadFault(0, upload);
  auto verdict = ValidateUpload(received, n, validation);
  ASSERT_TRUE(verdict.ok());
  // Byzantine uploads are well-formed unit vectors: validation cannot catch
  // them (that is the point of the class).
  EXPECT_EQ(verdict->accepted.cols(), cols);
  EXPECT_TRUE(verdict->quarantined.empty());
  // ... but they really are different data.
  EXPECT_FALSE(AllClose(received, upload, 1e-6));
}

TEST(ValidateUploadTest, BoundsAndDisabledMode) {
  Matrix upload(3, 3);
  upload(0, 0) = 1.0;                       // norm 1: fine
  upload(0, 1) = 1e-9;                      // norm below min_norm
  upload(0, 2) = 1e9;                       // norm above max_norm
  UploadValidationOptions options;
  auto verdict = ValidateUpload(upload, 3, options);
  ASSERT_TRUE(verdict.ok());
  EXPECT_EQ(verdict->accepted.cols(), 1);
  EXPECT_EQ(verdict->kept, (std::vector<int64_t>{0}));
  EXPECT_EQ(verdict->quarantined, (std::vector<int64_t>{1, 2}));

  options.enabled = false;  // trust mode: everything passes
  auto trusting = ValidateUpload(upload, 3, options);
  ASSERT_TRUE(trusting.ok());
  EXPECT_EQ(trusting->accepted.cols(), 3);

  // expected_dim < 0 skips the dimension check (first upload fixes it).
  EXPECT_TRUE(ValidateUpload(upload, -1, UploadValidationOptions{}).ok());
  EXPECT_FALSE(ValidateUpload(upload, 4, UploadValidationOptions{}).ok());

  UploadValidationOptions degenerate;
  degenerate.min_norm = 2.0;
  degenerate.max_norm = 1.0;
  EXPECT_FALSE(ValidateUpload(upload, 3, degenerate).ok());
}

// The single-pass sum-of-squares screen must be indistinguishable from the
// legacy two-pass scan: same verdicts, same reason strings (whose norms are
// bit-for-bit Norm2 values), on every column class — including the
// ambiguous one, huge-but-finite entries whose squares overflow to inf.
TEST(ValidateUploadTest, FastPathKeepsScalarVerdictsAndReasonStrings) {
  const int64_t n = 3;
  Matrix upload(n, 6);
  upload(0, 0) = 1.0;    // fine
  upload(0, 1) = 1e-9;   // below min_norm
  upload(0, 2) = 1e9;    // above max_norm
  upload(0, 3) = 1e200;  // finite entries, inf sum of squares: a NORM fail
  upload(0, 4) = std::nan("");
  upload(1, 5) = std::numeric_limits<double>::infinity();

  UploadValidationOptions options;
  auto verdict = ValidateUpload(upload, n, options);
  ASSERT_TRUE(verdict.ok());
  EXPECT_EQ(verdict->kept, (std::vector<int64_t>{0}));
  EXPECT_EQ(verdict->quarantined, (std::vector<int64_t>{1, 2, 3, 4, 5}));
  ASSERT_EQ(verdict->reasons.size(), 5u);
  // Norm-window rejections render the exact Norm2 value; the overflow
  // column reads "norm inf", NOT "non-finite value" — its entries are
  // finite, so the element-wise disambiguation must classify it as a norm
  // failure just as the two-pass scan did.
  for (int64_t which : {0, 1, 2}) {
    const int64_t col = which + 1;
    const std::string expected =
        "norm " + std::to_string(Norm2(upload.ColData(col), n)) +
        " outside [" + std::to_string(options.min_norm) + ", " +
        std::to_string(options.max_norm) + "]";
    EXPECT_EQ(verdict->reasons[static_cast<size_t>(which)], expected)
        << "column " << col;
  }
  EXPECT_EQ(verdict->reasons[3], "non-finite value");
  EXPECT_EQ(verdict->reasons[4], "non-finite value");
}

TEST(RetryOptionsTest, Validation) {
  RetryOptions retry;
  EXPECT_TRUE(ValidateRetryOptions(retry).ok());
  retry.max_attempts = 0;
  EXPECT_FALSE(ValidateRetryOptions(retry).ok());
  retry.max_attempts = 3;
  retry.timeout_ms = 0;
  EXPECT_FALSE(ValidateRetryOptions(retry).ok());
  retry.timeout_ms = 100;
  retry.base_backoff_ms = -5;
  EXPECT_FALSE(ValidateRetryOptions(retry).ok());
  retry.base_backoff_ms = 10;
  retry.backoff_multiplier = 0.5;
  EXPECT_FALSE(ValidateRetryOptions(retry).ok());
  retry.backoff_multiplier = 2.0;
  retry.jitter_fraction = 1.5;
  EXPECT_FALSE(ValidateRetryOptions(retry).ok());
  retry.jitter_fraction = 0.1;
  EXPECT_TRUE(ValidateRetryOptions(retry).ok());
}

TEST(ChannelRetryTest, TransientFailuresRecoverWithinBudget) {
  FaultPlanOptions options;
  options.transient_rate = 1.0;
  options.max_transient_failures = 2;
  auto plan = FaultPlan::Create(1, options);
  ASSERT_TRUE(plan.ok());
  const int lost = plan->ScheduleFor(0).transient_failures;
  ASSERT_GE(lost, 1);

  Channel channel{ChannelOptions{}};
  RetryOptions retry;
  retry.max_attempts = 4;
  SimClock clock;
  const Matrix payload = UnitColumns(6, 4, 7);
  const UplinkOutcome outcome =
      channel.UplinkWithRetry(0, payload, *plan, retry, &clock);
  EXPECT_TRUE(outcome.delivered);
  EXPECT_TRUE(outcome.status.ok());
  EXPECT_EQ(outcome.attempts, lost + 1);
  EXPECT_TRUE(AllClose(outcome.received, payload, 0.0));
  EXPECT_EQ(channel.stats().retries, lost);
  // Every lost attempt still transmitted the payload: the bandwidth cost of
  // retrying is visible in the accounting.
  EXPECT_EQ(channel.stats().uplink_values,
            static_cast<int64_t>(lost + 1) * payload.size());
  // Backoff advanced the simulated clock.
  EXPECT_GT(clock.now_ms(), 0);
}

TEST(ChannelRetryTest, DroppedDeviceExhaustsBudgetWithTimeouts) {
  FaultPlanOptions options;
  options.dropout_rate = 1.0;
  auto plan = FaultPlan::Create(1, options);
  ASSERT_TRUE(plan.ok());

  Channel channel{ChannelOptions{}};
  RetryOptions retry;
  retry.max_attempts = 3;
  retry.timeout_ms = 250;
  SimClock clock;
  const UplinkOutcome outcome = channel.UplinkWithRetry(
      0, UnitColumns(6, 4, 7), *plan, retry, &clock);
  EXPECT_FALSE(outcome.delivered);
  EXPECT_EQ(outcome.attempts, 3);
  EXPECT_EQ(outcome.status.code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(channel.stats().timeouts, 3);
  EXPECT_EQ(channel.stats().retries, 2);
  // A device that never answers transmits nothing.
  EXPECT_EQ(channel.stats().uplink_values, 0);
  // Three full deadlines plus two backoffs elapsed.
  EXPECT_GE(outcome.elapsed_ms, 3 * 250);
}

TEST(ChannelRetryTest, OutcomeIsDeterministic) {
  FaultPlanOptions options = MixedFaults();
  auto plan = FaultPlan::Create(8, options);
  ASSERT_TRUE(plan.ok());
  RetryOptions retry;
  retry.max_attempts = 3;
  retry.timeout_ms = 500;

  auto run = [&]() {
    std::ostringstream os;
    Channel channel{ChannelOptions{}};
    for (int64_t z = 0; z < 8; ++z) {
      SimClock clock;
      const UplinkOutcome outcome = channel.UplinkWithRetry(
          z, UnitColumns(6, 4, 7), *plan, retry, &clock);
      os << z << ":" << outcome.delivered << ":" << outcome.attempts << ":"
         << outcome.elapsed_ms << "\n";
    }
    os << channel.stats().retries << " " << channel.stats().timeouts;
    return os.str();
  };
  EXPECT_EQ(run(), run());
}

// Acceptance criterion (a): with faults on, RunFedSc is bit-identical across
// thread counts — labels, per-device reports, comm stats, and the
// deterministic metrics registry.
TEST(FedScFaultsTest, BitIdenticalAcrossThreadCounts) {
  auto fed = MakeFederation(91);
  ASSERT_TRUE(fed.ok()) << fed.status().ToString();

  FedScOptions options;
  options.faults = MixedFaults();
  options.retry.max_attempts = 3;
  options.retry.timeout_ms = 500;
  options.quorum = 0.25;

  auto run = [&](int num_threads) {
    ResetMetrics();
    EnableMetrics(true);
    FedScOptions threaded = options;
    threaded.num_threads = num_threads;
    auto result = RunFedSc(*fed, 4, threaded);
    EnableMetrics(false);
    EXPECT_TRUE(result.ok()) << result.status().ToString();
    return std::make_pair(std::move(result).value(),
                          DeterministicFingerprint(SnapshotMetrics()));
  };

  const auto [serial, serial_metrics] = run(1);
  EXPECT_TRUE(FaultPlan::Create(fed->num_devices(), options.faults)
                  ->active());
  for (int num_threads : {2, 8}) {
    const auto [threaded, threaded_metrics] = run(num_threads);
    EXPECT_EQ(serial.global_labels, threaded.global_labels) << num_threads;
    EXPECT_EQ(serial.failed_devices, threaded.failed_devices) << num_threads;
    EXPECT_EQ(serial.participating_devices, threaded.participating_devices);
    EXPECT_EQ(serial.quarantined_samples, threaded.quarantined_samples);
    EXPECT_EQ(serial.comm.uplink_bits, threaded.comm.uplink_bits);
    EXPECT_EQ(serial.comm.retries, threaded.comm.retries);
    EXPECT_EQ(serial.comm.timeouts, threaded.comm.timeouts);
    EXPECT_EQ(serial.comm.rounds, threaded.comm.rounds);
    EXPECT_EQ(serial.comm.sim_uplink_ms, threaded.comm.sim_uplink_ms);
    ASSERT_EQ(serial.device_reports.size(), threaded.device_reports.size());
    for (size_t z = 0; z < serial.device_reports.size(); ++z) {
      EXPECT_EQ(serial.device_reports[z].outcome,
                threaded.device_reports[z].outcome)
          << z;
      EXPECT_EQ(serial.device_reports[z].attempts,
                threaded.device_reports[z].attempts)
          << z;
    }
    EXPECT_EQ(serial_metrics, threaded_metrics) << num_threads;
  }
}

// Acceptance criterion (b): 30% dropout against a 0.5 quorum completes,
// reports the dropped devices, labels their points with the sentinel, and
// keeps the surviving points' accuracy within tolerance of the fault-free
// run.
TEST(FedScFaultsTest, DropoutWithQuorumDegradesGracefully) {
  auto fed = MakeFederation(92);
  ASSERT_TRUE(fed.ok()) << fed.status().ToString();
  const std::vector<int64_t> truth = fed->GlobalTruth();

  FedScOptions clean;
  auto baseline = RunFedSc(*fed, 4, clean);
  ASSERT_TRUE(baseline.ok()) << baseline.status().ToString();
  const double clean_acc =
      ClusteringAccuracy(truth, baseline->global_labels);

  FedScOptions faulty;
  faulty.faults.dropout_rate = 0.3;
  faulty.quorum = 0.5;
  auto result = RunFedSc(*fed, 4, faulty);
  ASSERT_TRUE(result.ok()) << result.status().ToString();

  // The schedule is deterministic, and with 12 devices at 30% some must
  // drop; each is reported exactly once with a non-OK status.
  EXPECT_FALSE(result->failed_devices.empty());
  EXPECT_EQ(result->participating_devices +
                static_cast<int64_t>(result->failed_devices.size()),
            fed->num_devices());
  for (int64_t z : result->failed_devices) {
    const DeviceReport& report =
        result->device_reports[static_cast<size_t>(z)];
    EXPECT_EQ(report.outcome, DeviceOutcome::kDropped);
    EXPECT_FALSE(report.status.ok());
    // Every point of a failed device wears the sentinel.
    for (int64_t label : result->device_labels[static_cast<size_t>(z)]) {
      EXPECT_EQ(label, FedScResult::kFailedDeviceLabel);
    }
  }

  // Surviving points keep their quality: compare accuracy on the covered
  // subset against the fault-free run.
  std::vector<int64_t> covered_truth;
  std::vector<int64_t> covered_pred;
  for (size_t i = 0; i < result->global_labels.size(); ++i) {
    if (result->global_labels[i] == FedScResult::kFailedDeviceLabel) continue;
    covered_truth.push_back(truth[i]);
    covered_pred.push_back(result->global_labels[i]);
  }
  ASSERT_FALSE(covered_truth.empty());
  EXPECT_LT(covered_truth.size(), result->global_labels.size());
  const double surviving_acc =
      ClusteringAccuracy(covered_truth, covered_pred);
  EXPECT_GE(surviving_acc, clean_acc - 10.0)
      << "clean " << clean_acc << "% vs surviving " << surviving_acc << "%";
}

// Acceptance criterion (d): not enough devices -> typed status, no crash.
TEST(FedScFaultsTest, QuorumViolationReturnsTypedStatus) {
  auto fed = MakeFederation(93);
  ASSERT_TRUE(fed.ok()) << fed.status().ToString();
  FedScOptions options;
  options.faults.dropout_rate = 1.0;
  options.quorum = 0.5;
  auto result = RunFedSc(*fed, 4, options);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kQuorumNotMet);
  EXPECT_NE(result.status().message().find("quorum"), std::string::npos);

  // The default quorum of 1.0 makes any dropout a quorum violation — the
  // legacy strict behavior, now with a typed status.
  FedScOptions strict;
  strict.faults.dropout_rate = 0.3;
  auto strict_result = RunFedSc(*fed, 4, strict);
  ASSERT_FALSE(strict_result.ok());
  EXPECT_EQ(strict_result.status().code(), StatusCode::kQuorumNotMet);
}

// Acceptance criterion (c), end to end: every device sends a corrupted
// payload, and the round still finishes with finite pooled samples and
// labels that are either the sentinel or a real cluster id.
TEST(FedScFaultsTest, CorruptedPayloadsNeverPoisonLabels) {
  auto fed = MakeFederation(94);
  ASSERT_TRUE(fed.ok()) << fed.status().ToString();
  FedScOptions options;
  options.faults.corrupt_rate = 1.0;
  options.quorum = 0.0;
  auto result = RunFedSc(*fed, 4, options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();

  EXPECT_GT(result->quarantined_samples, 0);
  EXPECT_FALSE(result->failed_devices.empty());
  EXPECT_GT(result->participating_devices, 0);
  for (int64_t label : result->global_labels) {
    EXPECT_GE(label, FedScResult::kFailedDeviceLabel);
    EXPECT_LT(label, 4);
  }
  for (int64_t i = 0; i < result->samples.size(); ++i) {
    EXPECT_TRUE(std::isfinite(result->samples.data()[i]));
  }
  // Quarantined devices are reported as such.
  bool saw_quarantined_device = false;
  for (const DeviceReport& report : result->device_reports) {
    if (report.outcome == DeviceOutcome::kQuarantined) {
      saw_quarantined_device = true;
      EXPECT_FALSE(report.status.ok());
    }
  }
  EXPECT_TRUE(saw_quarantined_device);
}

TEST(FedScFaultsTest, ByzantineDevicesDegradeButDoNotCrash) {
  auto fed = MakeFederation(95);
  ASSERT_TRUE(fed.ok()) << fed.status().ToString();
  FedScOptions options;
  options.faults.byzantine_rate = 0.25;
  options.quorum = 0.0;
  auto result = RunFedSc(*fed, 4, options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  // Byzantine uploads pass validation: every device participates and no
  // sample is quarantined — the damage shows up in accuracy only.
  EXPECT_EQ(result->participating_devices, fed->num_devices());
  EXPECT_EQ(result->quarantined_samples, 0);
  for (int64_t label : result->global_labels) {
    EXPECT_GE(label, 0);
    EXPECT_LT(label, 4);
  }
}

// The rounds counter reports what actually happened: 1 on the happy path,
// the worst per-device attempt count when retries were needed.
TEST(FedScFaultsTest, RoundsReflectRetriesActuallyConsumed) {
  auto fed = MakeFederation(96);
  ASSERT_TRUE(fed.ok()) << fed.status().ToString();

  FedScOptions clean;
  auto one_shot = RunFedSc(*fed, 4, clean);
  ASSERT_TRUE(one_shot.ok());
  EXPECT_EQ(one_shot->comm.rounds, 1);
  EXPECT_EQ(one_shot->comm.retries, 0);
  EXPECT_EQ(one_shot->comm.timeouts, 0);

  FedScOptions flaky;
  flaky.faults.transient_rate = 1.0;
  flaky.faults.max_transient_failures = 2;
  flaky.retry.max_attempts = 4;
  auto retried = RunFedSc(*fed, 4, flaky);
  ASSERT_TRUE(retried.ok()) << retried.status().ToString();
  EXPECT_GT(retried->comm.rounds, 1);
  EXPECT_GT(retried->comm.retries, 0);
  EXPECT_GT(retried->comm.sim_uplink_ms, 0);
  int max_attempts = 0;
  for (const DeviceReport& report : retried->device_reports) {
    max_attempts = std::max(max_attempts, report.attempts);
  }
  EXPECT_EQ(retried->comm.rounds, max_attempts);
  // Transient losses recover within the budget: full participation.
  EXPECT_EQ(retried->participating_devices, fed->num_devices());
  EXPECT_EQ(retried->global_labels.size(),
            one_shot->global_labels.size());
}

TEST(FedScFaultsTest, OptionValidationIsUpFront) {
  auto fed = MakeFederation(97);
  ASSERT_TRUE(fed.ok());
  FedScOptions options;
  options.quorum = 1.5;
  EXPECT_FALSE(RunFedSc(*fed, 4, options).ok());
  options.quorum = 1.0;
  options.faults.dropout_rate = 2.0;
  EXPECT_FALSE(RunFedSc(*fed, 4, options).ok());
  options.faults.dropout_rate = 0.0;
  options.retry.max_attempts = 0;
  EXPECT_FALSE(RunFedSc(*fed, 4, options).ok());
  options.retry.max_attempts = 1;
  options.validation.min_norm = 5.0;
  options.validation.max_norm = 1.0;
  EXPECT_FALSE(RunFedSc(*fed, 4, options).ok());
}

}  // namespace
}  // namespace fedsc
