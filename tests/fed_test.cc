#include <algorithm>
#include <cmath>
#include <set>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "data/synthetic.h"
#include "fed/kfed.h"
#include "fed/network.h"
#include "fed/partition.h"
#include "fed/pca.h"
#include "fed/privacy.h"
#include "linalg/blas.h"
#include "metrics/clustering_metrics.h"

namespace fedsc {
namespace {

Dataset Blobs(int64_t k, int64_t per_blob, int64_t dim, double spread,
              uint64_t seed) {
  Rng rng(seed);
  Dataset data;
  data.num_clusters = k;
  data.points = Matrix(dim, k * per_blob);
  for (int64_t c = 0; c < k; ++c) {
    Vector center(static_cast<size_t>(dim));
    for (auto& v : center) v = 20.0 * rng.Gaussian();
    for (int64_t p = 0; p < per_blob; ++p) {
      const int64_t col = c * per_blob + p;
      for (int64_t i = 0; i < dim; ++i) {
        data.points(i, col) =
            center[static_cast<size_t>(i)] + spread * rng.Gaussian();
      }
      data.labels.push_back(c);
    }
  }
  return data;
}

TEST(PartitionTest, IidCoversEveryDeviceWithAllClusters) {
  const Dataset data = Blobs(4, 50, 6, 0.5, 1);
  PartitionOptions options;
  options.num_devices = 8;
  auto fed = PartitionAcrossDevices(data, options);
  ASSERT_TRUE(fed.ok());
  EXPECT_EQ(fed->num_devices(), 8);
  EXPECT_EQ(fed->total_points, 200);
  for (int64_t count : fed->ClustersPerDevice()) EXPECT_EQ(count, 4);
  for (int64_t count : fed->DevicesPerCluster()) EXPECT_EQ(count, 8);
}

TEST(PartitionTest, NonIidRespectsClustersPerDevice) {
  const Dataset data = Blobs(10, 60, 6, 0.5, 2);
  PartitionOptions options;
  options.num_devices = 12;
  options.clusters_per_device = 2;
  auto fed = PartitionAcrossDevices(data, options);
  ASSERT_TRUE(fed.ok());
  for (int64_t count : fed->ClustersPerDevice()) EXPECT_LE(count, 2);
  // Every cluster is held by at least one device.
  for (int64_t count : fed->DevicesPerCluster()) EXPECT_GE(count, 1);
}

TEST(PartitionTest, GlobalIndexIsAPartition) {
  const Dataset data = Blobs(5, 30, 4, 0.5, 3);
  PartitionOptions options;
  options.num_devices = 7;
  options.clusters_per_device = 3;
  auto fed = PartitionAcrossDevices(data, options);
  ASSERT_TRUE(fed.ok());
  std::set<int64_t> seen;
  for (const auto& idx : fed->global_index) {
    for (int64_t i : idx) {
      EXPECT_TRUE(seen.insert(i).second) << "duplicate column " << i;
    }
  }
  EXPECT_EQ(static_cast<int64_t>(seen.size()), data.points.cols());
}

TEST(PartitionTest, DevicePointsMatchOriginalColumns) {
  const Dataset data = Blobs(3, 20, 5, 0.5, 4);
  PartitionOptions options;
  options.num_devices = 4;
  auto fed = PartitionAcrossDevices(data, options);
  ASSERT_TRUE(fed.ok());
  for (int64_t z = 0; z < fed->num_devices(); ++z) {
    const auto& idx = fed->global_index[static_cast<size_t>(z)];
    for (size_t i = 0; i < idx.size(); ++i) {
      for (int64_t r = 0; r < 5; ++r) {
        EXPECT_EQ(fed->points[static_cast<size_t>(z)](r,
                                                      static_cast<int64_t>(i)),
                  data.points(r, idx[i]));
      }
      EXPECT_EQ(fed->labels[static_cast<size_t>(z)][i],
                data.labels[static_cast<size_t>(idx[i])]);
    }
  }
}

TEST(PartitionTest, ToGlobalOrderRoundTrips) {
  const Dataset data = Blobs(4, 25, 4, 0.5, 5);
  PartitionOptions options;
  options.num_devices = 6;
  options.clusters_per_device = 2;
  auto fed = PartitionAcrossDevices(data, options);
  ASSERT_TRUE(fed.ok());
  EXPECT_EQ(fed->GlobalTruth(), data.labels);
}

TEST(PartitionTest, HeterogeneityIdentity) {
  // sum_z L^(z) == sum_l Z_l (footnote 4 of the paper).
  const Dataset data = Blobs(8, 40, 4, 0.5, 6);
  PartitionOptions options;
  options.num_devices = 10;
  options.clusters_per_device = 3;
  auto fed = PartitionAcrossDevices(data, options);
  ASSERT_TRUE(fed.ok());
  int64_t sum_l = 0;
  for (int64_t v : fed->ClustersPerDevice()) sum_l += v;
  int64_t sum_z = 0;
  for (int64_t v : fed->DevicesPerCluster()) sum_z += v;
  EXPECT_EQ(sum_l, sum_z);
}

TEST(PartitionTest, Validation) {
  const Dataset data = Blobs(2, 5, 3, 0.5, 7);
  EXPECT_FALSE(PartitionAcrossDevices(data, {.num_devices = 0}).ok());
  Dataset empty;
  EXPECT_FALSE(PartitionAcrossDevices(empty, {.num_devices = 2}).ok());
}

TEST(ChannelTest, AccountingMatchesFormulas) {
  // The uplink is serialized for real, so the accounting charges the exact
  // wire size — header + section header + payload — not values * bits.
  ChannelOptions options;
  Channel channel(options);
  Matrix samples(10, 3);
  channel.Uplink(samples);
  channel.Uplink(Matrix(10, 2));
  channel.Downlink(5, 16);
  channel.FinishRound();
  const CodecOptions codec = EffectiveCodecOptions(options);
  const int64_t wire_bytes =
      EncodedWireBytes(10, 3, codec) + EncodedWireBytes(10, 2, codec);
  EXPECT_EQ(wire_bytes, 2 * (36 + 24) + 8 * 50);  // f64 payloads + framing
  EXPECT_EQ(channel.stats().uplink_values, 50);
  EXPECT_EQ(channel.stats().uplink_wire_bytes, wire_bytes);
  EXPECT_EQ(channel.stats().uplink_bits, 8 * wire_bytes);
  EXPECT_EQ(channel.stats().downlink_values, 5);
  EXPECT_DOUBLE_EQ(channel.stats().downlink_bits, 5 * 4.0);  // log2(16)
  EXPECT_EQ(channel.stats().rounds, 1);
}

TEST(ChannelTest, QuantizedAccountingChargesPackedBits) {
  ChannelOptions options;
  options.quantize = true;
  options.bits_per_value = 8;
  Channel channel(options);
  channel.Uplink(Matrix(10, 3));
  // 30 values at 8 bits pack into 30 payload bytes plus fixed framing.
  const int64_t wire_bytes = EncodedWireBytes(
      10, 3, EffectiveCodecOptions(options));
  EXPECT_EQ(wire_bytes, 36 + 24 + 30);
  EXPECT_EQ(channel.stats().uplink_wire_bytes, wire_bytes);
  EXPECT_EQ(channel.stats().uplink_bits, 8 * wire_bytes);
}

TEST(ChannelTest, WireSinkSeesExactlyTheChargedBytes) {
  // Regression for the accounting fix: the bytes the sink observes ARE the
  // bytes the stats charge.
  ChannelOptions options;
  int64_t sink_bytes = 0;
  options.wire_sink = [&sink_bytes](int64_t, const std::vector<uint8_t>& w) {
    sink_bytes += static_cast<int64_t>(w.size());
  };
  Channel channel(options);
  channel.Uplink(Matrix(7, 4));
  channel.Uplink(Matrix(3, 1));
  EXPECT_GT(sink_bytes, 0);
  EXPECT_EQ(channel.stats().uplink_wire_bytes, sink_bytes);
  EXPECT_EQ(channel.stats().uplink_bits, 8 * sink_bytes);
}

TEST(ChannelTest, NoiselessUplinkIsIdentity) {
  Channel channel(ChannelOptions{});
  Matrix samples(4, 2);
  samples(0, 0) = 1.5;
  const Matrix received = channel.Uplink(samples);
  EXPECT_TRUE(AllClose(received, samples, 0.0));
}

TEST(ChannelTest, NoiseHasRequestedScale) {
  ChannelOptions options;
  options.noise_delta = 2.0;
  options.seed = 9;
  Channel channel(options);
  const int64_t r = 4;
  Matrix samples(2000, r);  // many rows for a tight variance estimate
  const Matrix received = channel.Uplink(samples);
  double sum2 = 0.0;
  for (int64_t j = 0; j < r; ++j) {
    for (int64_t i = 0; i < 2000; ++i) sum2 += received(i, j) * received(i, j);
  }
  const double expected_var = (2.0 / std::sqrt(4.0)) * (2.0 / std::sqrt(4.0));
  EXPECT_NEAR(sum2 / (2000.0 * r), expected_var, 0.05);
}

TEST(PcaTest, RecoversPrincipalDirections) {
  Rng rng(10);
  // Points spread along e1 with tiny noise elsewhere.
  Matrix x(5, 60);
  for (int64_t j = 0; j < 60; ++j) {
    x(0, j) = 10.0 * rng.Gaussian();
    for (int64_t i = 1; i < 5; ++i) x(i, j) = 0.01 * rng.Gaussian();
  }
  auto pca = Pca(x, 1);
  ASSERT_TRUE(pca.ok());
  EXPECT_EQ(pca->projected.rows(), 1);
  EXPECT_NEAR(std::fabs(pca->components(0, 0)), 1.0, 1e-3);
}

TEST(PcaTest, ProjectionPreservesVarianceOrder) {
  Rng rng(11);
  Matrix x(6, 40);
  for (int64_t j = 0; j < 40; ++j) {
    for (int64_t i = 0; i < 6; ++i) {
      x(i, j) = (6.0 - static_cast<double>(i)) * rng.Gaussian();
    }
  }
  auto pca = Pca(x, 3);
  ASSERT_TRUE(pca.ok());
  Vector row_var(3, 0.0);
  for (int64_t j = 0; j < 40; ++j) {
    for (int64_t i = 0; i < 3; ++i) {
      row_var[static_cast<size_t>(i)] +=
          pca->projected(i, j) * pca->projected(i, j);
    }
  }
  EXPECT_GE(row_var[0], row_var[1]);
  EXPECT_GE(row_var[1], row_var[2]);
  EXPECT_FALSE(Pca(Matrix(3, 0), 2).ok());
  EXPECT_FALSE(Pca(x, 0).ok());
}

TEST(KFedTest, ClustersHeterogeneousBlobs) {
  const Dataset data = Blobs(8, 60, 8, 0.4, 12);
  PartitionOptions partition;
  partition.num_devices = 16;
  partition.clusters_per_device = 2;
  auto fed = PartitionAcrossDevices(data, partition);
  ASSERT_TRUE(fed.ok());
  KFedOptions options;
  options.local_k = 2;
  auto result = RunKFed(*fed, 8, options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_GE(ClusteringAccuracy(data.labels, result->global_labels), 95.0);
  EXPECT_EQ(result->comm.rounds, 1);
  // Uplink: one centroid matrix (dim x 2) per device.
  EXPECT_EQ(result->comm.uplink_values, 16 * 8 * 2);
  EXPECT_GT(result->seconds, 0.0);
}

TEST(KFedTest, LocalPcaDestroysAlignment) {
  // High-dimensional blobs; per-device PCA projects into incompatible
  // coordinate systems so accuracy collapses (the paper's Table III
  // k-FED + PCA rows).
  const Dataset data = Blobs(6, 80, 64, 0.5, 13);
  PartitionOptions partition;
  partition.num_devices = 12;
  partition.clusters_per_device = 2;
  auto fed = PartitionAcrossDevices(data, partition);
  ASSERT_TRUE(fed.ok());
  KFedOptions plain;
  plain.local_k = 2;
  KFedOptions pca;
  pca.local_k = 2;
  pca.pca_dim = 5;
  auto without = RunKFed(*fed, 6, plain);
  auto with = RunKFed(*fed, 6, pca);
  ASSERT_TRUE(without.ok());
  ASSERT_TRUE(with.ok());
  EXPECT_GT(ClusteringAccuracy(data.labels, without->global_labels),
            ClusteringAccuracy(data.labels, with->global_labels) + 10.0);
}

TEST(KFedTest, Validation) {
  FederatedDataset empty;
  EXPECT_FALSE(RunKFed(empty, 3).ok());
}

TEST(PartitionTest, VariableClusterRangePerDevice) {
  const Dataset data = Blobs(10, 80, 6, 0.5, 21);
  PartitionOptions options;
  options.num_devices = 20;
  options.clusters_per_device = 2;
  options.clusters_per_device_max = 4;
  options.seed = 77;
  auto fed = PartitionAcrossDevices(data, options);
  ASSERT_TRUE(fed.ok());
  const auto counts = fed->ClustersPerDevice();
  std::set<int64_t> distinct;
  for (int64_t count : counts) {
    EXPECT_GE(count, 1);   // swaps may only replace, never remove coverage
    EXPECT_LE(count, 4);
    distinct.insert(count);
  }
  // With 20 devices drawing from {2, 3, 4}, more than one count appears.
  EXPECT_GT(distinct.size(), 1u);
  for (int64_t holders : fed->DevicesPerCluster()) EXPECT_GE(holders, 1);
}

TEST(PartitionTest, MaxBelowMinActsAsFixed) {
  const Dataset data = Blobs(6, 30, 4, 0.5, 22);
  PartitionOptions options;
  options.num_devices = 8;
  options.clusters_per_device = 3;
  options.clusters_per_device_max = 1;  // ignored: below the minimum
  auto fed = PartitionAcrossDevices(data, options);
  ASSERT_TRUE(fed.ok());
  for (int64_t count : fed->ClustersPerDevice()) EXPECT_LE(count, 3);
}

TEST(ChannelTest, QuantizationRoundsToGrid) {
  ChannelOptions options;
  options.quantize = true;
  options.bits_per_value = 4;
  options.quantization_range = 1.0;
  Channel channel(options);
  Matrix samples(1, 4);
  samples(0, 0) = 0.1234;
  samples(0, 1) = -0.987;
  samples(0, 2) = 3.0;   // clamped to the range
  samples(0, 3) = -3.0;
  const Matrix received = channel.Uplink(samples);
  const double step = 2.0 / 15.0;  // 2^4 - 1 levels
  for (int64_t j = 0; j < 4; ++j) {
    // On-grid: (v + 1) / step is integral.
    const double ticks = (received(0, j) + 1.0) / step;
    EXPECT_NEAR(ticks, std::round(ticks), 1e-9);
    // Within half a step of the clamped input.
    const double clamped = std::clamp(samples(0, j), -1.0, 1.0);
    EXPECT_LE(std::fabs(received(0, j) - clamped), step / 2.0 + 1e-12);
  }
}

TEST(ChannelTest, CreateRejectsInvalidOptions) {
  // Channel::Create (and every Run* entry point, via
  // ValidateChannelOptions) rejects misconfigured channels up front instead
  // of silently passing values through unquantized.
  ChannelOptions options;
  options.quantize = true;
  options.bits_per_value = 64;  // outside the quantizable range [2, 32]
  auto rejected = Channel::Create(options);
  ASSERT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.status().code(), StatusCode::kInvalidArgument);

  options.bits_per_value = 1;  // too coarse to quantize
  EXPECT_FALSE(Channel::Create(options).ok());
  options.bits_per_value = 8;
  options.quantization_range = 0.0;
  EXPECT_FALSE(Channel::Create(options).ok());
  options.quantization_range = 1.5;
  ASSERT_TRUE(Channel::Create(options).ok());

  ChannelOptions noisy;
  noisy.noise_delta = -0.5;
  EXPECT_FALSE(Channel::Create(noisy).ok());
  ChannelOptions zero_bits;
  zero_bits.bits_per_value = 0;
  EXPECT_FALSE(Channel::Create(zero_bits).ok());
  EXPECT_TRUE(Channel::Create(ChannelOptions{}).ok());
}

TEST(ChannelTest, RunEntryPointsValidateChannelOptions) {
  const Dataset data = Blobs(3, 20, 6, 0.5, 23);
  PartitionOptions partition;
  partition.num_devices = 4;
  auto fed = PartitionAcrossDevices(data, partition);
  ASSERT_TRUE(fed.ok());
  KFedOptions options;
  options.channel.noise_delta = -1.0;
  auto result = RunKFed(*fed, 3, options);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST(PrivacyTest, ClippingIsExactAtTheBoundary) {
  DpOptions options;
  options.epsilon = 1.0;
  options.delta = 1e-5;
  options.sensitivity = 2.0;
  const double clip = options.sensitivity / 2.0;
  const double sigma = *GaussianMechanismSigma(options);

  Matrix samples(5, 2);
  samples(0, 0) = clip;        // exactly at the boundary: not rescaled
  samples(1, 1) = 4.0 * clip;  // over: rescaled onto the boundary
  const uint64_t seed = 123;
  Rng rng(seed);
  auto released = PrivatizeSamples(samples, options, &rng);
  ASSERT_TRUE(released.ok());

  // Replay the mechanism by hand with an identically seeded stream: the
  // boundary column must be passed through un-clipped, the oversized one
  // scaled to exactly clip, bit for bit.
  Rng replay(seed);
  Matrix expected(5, 2);
  expected(0, 0) = clip;
  expected(1, 1) = clip;
  for (int64_t j = 0; j < 2; ++j) {
    for (int64_t i = 0; i < 5; ++i) {
      expected(i, j) += sigma * replay.Gaussian();
    }
  }
  EXPECT_TRUE(AllClose(*released, expected, 0.0));
}

TEST(PrivacyTest, ZeroNormSamplesAreReleasedAsPureNoise) {
  // A device with a degenerate (all-zero) sample must not divide by zero;
  // the release is pure mechanism noise.
  DpOptions options;
  options.epsilon = 0.5;
  options.delta = 1e-4;
  Rng rng(31);
  auto released = PrivatizeSamples(Matrix(6, 1), options, &rng);
  ASSERT_TRUE(released.ok());
  double sum2 = 0.0;
  for (int64_t i = 0; i < 6; ++i) {
    EXPECT_TRUE(std::isfinite((*released)(i, 0)));
    sum2 += (*released)(i, 0) * (*released)(i, 0);
  }
  EXPECT_GT(sum2, 0.0);  // noise was actually added
}

TEST(PrivacyTest, DegenerateDpOptionsAreRejected) {
  Rng rng(32);
  const Matrix samples(4, 2);
  DpOptions options;
  options.delta = 1.0;  // delta must lie strictly inside (0, 1)
  EXPECT_FALSE(PrivatizeSamples(samples, options, &rng).ok());
  options.delta = 1e-5;
  options.epsilon = -1.0;
  EXPECT_FALSE(PrivatizeSamples(samples, options, &rng).ok());
  options.epsilon = 1.0;
  options.sensitivity = 0.0;
  EXPECT_FALSE(PrivatizeSamples(samples, options, &rng).ok());
}

}  // namespace
}  // namespace fedsc
