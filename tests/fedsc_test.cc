#include <algorithm>
#include <cmath>
#include <set>

#include <gtest/gtest.h>

#include "core/fedsc.h"
#include "data/synthetic.h"
#include "fed/partition.h"
#include "linalg/blas.h"
#include "metrics/clustering_metrics.h"

namespace fedsc {
namespace {

// A well-separated synthetic federation: L subspaces of dimension d in a
// roomy ambient space, partitioned non-IID across Z devices.
struct Federation {
  Dataset data;
  FederatedDataset fed;
};

Federation MakeFederation(int64_t num_subspaces, int64_t per_subspace,
                          int64_t num_devices, int64_t clusters_per_device,
                          uint64_t seed, int64_t ambient = 24,
                          int64_t dim = 3) {
  SyntheticOptions options;
  options.ambient_dim = ambient;
  options.subspace_dim = dim;
  options.num_subspaces = num_subspaces;
  options.points_per_subspace = per_subspace;
  options.seed = seed;
  auto data = GenerateUnionOfSubspaces(options);
  EXPECT_TRUE(data.ok());
  PartitionOptions partition;
  partition.num_devices = num_devices;
  partition.clusters_per_device = clusters_per_device;
  partition.seed = seed ^ 0xABCDEF;
  auto fed = PartitionAcrossDevices(*data, partition);
  EXPECT_TRUE(fed.ok());
  return {std::move(data).value(), std::move(fed).value()};
}

TEST(LocalClusteringTest, PartitionsTwoSubspacesAndSamplesFromThem) {
  // One device holding points from 2 well-separated subspaces.
  Federation f = MakeFederation(2, 30, 1, 2, 42);
  FedScOptions options;
  auto local = LocalClusterAndSample(f.fed.points[0], options, 7);
  ASSERT_TRUE(local.ok()) << local.status().ToString();
  EXPECT_EQ(local->num_local_clusters, 2);
  EXPECT_EQ(ClusteringAccuracy(f.fed.labels[0], local->partition), 100.0);

  // One unit-norm sample per local cluster, lying in the right subspace.
  EXPECT_EQ(local->samples.cols(), 2);
  for (int64_t s = 0; s < 2; ++s) {
    EXPECT_NEAR(Norm2(local->samples.ColData(s), 24), 1.0, 1e-9);
    // Find the ground-truth label of the sample's local cluster.
    const int64_t t = local->sample_cluster[static_cast<size_t>(s)];
    int64_t truth_label = -1;
    for (size_t i = 0; i < local->partition.size(); ++i) {
      if (local->partition[i] == t) {
        truth_label = f.fed.labels[0][i];
        break;
      }
    }
    ASSERT_GE(truth_label, 0);
    const Matrix& basis = f.data.bases[static_cast<size_t>(truth_label)];
    Vector coords = Gemv(Trans::kTrans, basis, local->samples.Col(s));
    Vector reconstructed = Gemv(Trans::kNo, basis, coords);
    Axpy(-1.0, local->samples.ColData(s), reconstructed.data(), 24);
    EXPECT_LT(Norm2(reconstructed.data(), 24), 1e-6)
        << "sample " << s << " not in subspace " << truth_label;
  }
}

TEST(LocalClusteringTest, SinglePointDevice) {
  Matrix one(8, 1);
  one(0, 0) = 2.0;
  auto local = LocalClusterAndSample(one, FedScOptions{}, 3);
  ASSERT_TRUE(local.ok());
  EXPECT_EQ(local->num_local_clusters, 1);
  EXPECT_EQ(local->partition, (std::vector<int64_t>{0}));
  EXPECT_EQ(local->samples.cols(), 1);
  EXPECT_NEAR(Norm2(local->samples.ColData(0), 8), 1.0, 1e-12);
  // With d_t auto-detected, the sample must be +-e_0.
  EXPECT_NEAR(std::fabs(local->samples(0, 0)), 1.0, 1e-9);
}

TEST(LocalClusteringTest, EmptyDevice) {
  auto local = LocalClusterAndSample(Matrix(8, 0), FedScOptions{}, 3);
  ASSERT_TRUE(local.ok());
  EXPECT_EQ(local->num_local_clusters, 0);
  EXPECT_EQ(local->samples.cols(), 0);
}

TEST(LocalClusteringTest, FixedUpperBoundMode) {
  Federation f = MakeFederation(3, 20, 1, 3, 11);
  FedScOptions options;
  options.use_eigengap = false;
  options.max_local_clusters = 3;
  options.sample_dim = 1;
  auto local = LocalClusterAndSample(f.fed.points[0], options, 5);
  ASSERT_TRUE(local.ok());
  EXPECT_EQ(local->num_local_clusters, 3);
  EXPECT_EQ(local->samples.cols(), 3);
  options.max_local_clusters = 0;
  EXPECT_FALSE(LocalClusterAndSample(f.fed.points[0], options, 5).ok());
}

TEST(LocalClusteringTest, MultipleSamplesPerCluster) {
  Federation f = MakeFederation(2, 25, 1, 2, 13);
  FedScOptions options;
  options.samples_per_cluster = 3;
  auto local = LocalClusterAndSample(f.fed.points[0], options, 5);
  ASSERT_TRUE(local.ok());
  EXPECT_EQ(local->samples.cols(), 2 * 3);
  EXPECT_EQ(local->sample_cluster.size(), 6u);
}

TEST(FedScTest, ExactClusteringWithSscServer) {
  Federation f = MakeFederation(6, 60, 12, 2, 17);
  FedScOptions options;
  options.central_method = ScMethod::kSsc;
  auto result = RunFedSc(f.fed, 6, options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_GE(ClusteringAccuracy(f.data.labels, result->global_labels), 99.0);
  EXPECT_GE(NormalizedMutualInformation(f.data.labels,
                                        result->global_labels),
            99.0);
}

TEST(FedScTest, ExactClusteringWithTscServer) {
  // TSC needs more devices per subspace (Theorem 2); give it plenty.
  Federation f = MakeFederation(4, 120, 24, 2, 19);
  FedScOptions options;
  options.central_method = ScMethod::kTsc;
  auto result = RunFedSc(f.fed, 4, options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_GE(ClusteringAccuracy(f.data.labels, result->global_labels), 97.0);
}

TEST(FedScTest, CommunicationAccountingMatchesSectionIVE) {
  Federation f = MakeFederation(4, 40, 8, 2, 23);
  FedScOptions options;
  options.channel.bits_per_value = 64;
  auto result = RunFedSc(f.fed, 4, options);
  ASSERT_TRUE(result.ok());
  // Uplink values = n * sum_z r^(z) (with s samples per cluster, s = 1);
  // uplink bits are the true serialized size of each device's wire message
  // (Section IV-E's n * q * r^(z) payload plus the format's framing).
  int64_t total_r = 0;
  int64_t wire_bytes = 0;
  const CodecOptions codec = EffectiveCodecOptions(options.channel);
  for (int64_t r : result->local_cluster_counts) {
    total_r += r;
    wire_bytes += EncodedWireBytes(24, r, codec);
  }
  EXPECT_EQ(result->total_samples, total_r);
  EXPECT_EQ(result->comm.uplink_values, 24 * total_r);
  EXPECT_EQ(result->comm.uplink_wire_bytes, wire_bytes);
  EXPECT_EQ(result->comm.uplink_bits, 8 * wire_bytes);
  EXPECT_EQ(wire_bytes,
            60 * static_cast<int64_t>(result->local_cluster_counts.size()) +
                8 * 24 * total_r);
  // Downlink: one assignment per sample, log2(L) bits each.
  EXPECT_EQ(result->comm.downlink_values, total_r);
  EXPECT_DOUBLE_EQ(result->comm.downlink_bits,
                   static_cast<double>(total_r) * 2.0);  // log2(4)
  EXPECT_EQ(result->comm.rounds, 1);  // one-shot
  // Timing decomposition T = sum T^(z) + T_c.
  EXPECT_NEAR(result->seconds,
              result->local_seconds + result->central_seconds, 1e-12);
}

TEST(FedScTest, RobustToModerateChannelNoise) {
  Federation f = MakeFederation(4, 60, 10, 2, 29);
  FedScOptions options;
  options.channel.noise_delta = 0.1;
  auto result = RunFedSc(f.fed, 4, options);
  ASSERT_TRUE(result.ok());
  EXPECT_GE(ClusteringAccuracy(f.data.labels, result->global_labels), 95.0);
}

TEST(FedScTest, HandlesDevicesSmallerThanSubspaceDim) {
  // More devices than points per cluster: some devices get 1-2 points.
  Federation f = MakeFederation(3, 12, 18, 1, 31);
  auto result = RunFedSc(f.fed, 3, FedScOptions{});
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->global_labels.size(), f.data.labels.size());
  for (int64_t l : result->global_labels) {
    EXPECT_GE(l, 0);
    EXPECT_LT(l, 3);
  }
}

TEST(FedScTest, RejectsInvalidOptions) {
  Federation f = MakeFederation(2, 10, 2, 2, 37);
  FedScOptions bad_method;
  bad_method.central_method = ScMethod::kNsn;
  EXPECT_FALSE(RunFedSc(f.fed, 2, bad_method).ok());
  FedScOptions bad_samples;
  bad_samples.samples_per_cluster = 0;
  EXPECT_FALSE(RunFedSc(f.fed, 2, bad_samples).ok());
  EXPECT_FALSE(RunFedSc(f.fed, 0, FedScOptions{}).ok());
  FederatedDataset empty;
  EXPECT_FALSE(RunFedSc(empty, 2, FedScOptions{}).ok());
}

TEST(FedScTest, DeterministicUnderSeed) {
  Federation f = MakeFederation(4, 40, 8, 2, 41);
  FedScOptions options;
  options.seed = 777;
  auto a = RunFedSc(f.fed, 4, options);
  auto b = RunFedSc(f.fed, 4, options);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->global_labels, b->global_labels);
  EXPECT_TRUE(AllClose(a->samples, b->samples, 0.0));
}

TEST(FedScTest, InducedConnectivityPositiveForHealthyRun) {
  Federation f = MakeFederation(4, 60, 10, 2, 43);
  auto result = RunFedSc(f.fed, 4, FedScOptions{});
  ASSERT_TRUE(result.ok());
  auto conn = InducedConnectivity(f.fed, *result);
  ASSERT_TRUE(conn.ok()) << conn.status().ToString();
  EXPECT_EQ(conn->per_cluster.size(), 4u);
  EXPECT_GT(conn->mean_lambda2, 0.0);
}

TEST(FedScTest, SampleBookkeepingIsConsistent) {
  Federation f = MakeFederation(3, 30, 6, 2, 47);
  auto result = RunFedSc(f.fed, 3, FedScOptions{});
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->samples.cols(), result->total_samples);
  ASSERT_EQ(static_cast<int64_t>(result->sample_device.size()),
            result->total_samples);
  ASSERT_EQ(static_cast<int64_t>(result->sample_labels.size()),
            result->total_samples);
  // Every point maps to a sample on its own device.
  for (int64_t z = 0; z < f.fed.num_devices(); ++z) {
    for (int64_t s : result->point_sample[static_cast<size_t>(z)]) {
      ASSERT_GE(s, 0);
      ASSERT_LT(s, result->total_samples);
      EXPECT_EQ(result->sample_device[static_cast<size_t>(s)], z);
    }
  }
  // r^(z) totals match.
  int64_t total_r = 0;
  for (int64_t r : result->local_cluster_counts) total_r += r;
  EXPECT_EQ(total_r, result->total_samples);
}

TEST(FedScTest, HeterogeneityHelps) {
  // Same data, same devices; L' = 2 should do at least as well as IID.
  SyntheticOptions synth;
  synth.ambient_dim = 16;
  synth.subspace_dim = 3;
  synth.num_subspaces = 8;
  synth.points_per_subspace = 120;
  synth.seed = 53;
  auto data = GenerateUnionOfSubspaces(synth);
  ASSERT_TRUE(data.ok());

  auto run = [&](int64_t l_prime) {
    PartitionOptions partition;
    partition.num_devices = 16;
    partition.clusters_per_device = l_prime;
    partition.seed = 99;
    auto fed = PartitionAcrossDevices(*data, partition);
    EXPECT_TRUE(fed.ok());
    auto result = RunFedSc(*fed, 8, FedScOptions{});
    EXPECT_TRUE(result.ok()) << result.status().ToString();
    return ClusteringAccuracy(data->labels, result->global_labels);
  };
  const double acc_hetero = run(2);
  const double acc_iid = run(0);
  EXPECT_GE(acc_hetero + 1e-9, acc_iid - 5.0);  // allow small fluctuations
  EXPECT_GE(acc_hetero, 95.0);
}

TEST(FedScTest, ParallelExecutionMatchesSequential) {
  Federation f = MakeFederation(4, 40, 12, 2, 59);
  FedScOptions sequential;
  sequential.seed = 321;
  FedScOptions parallel = sequential;
  parallel.num_threads = 4;
  auto a = RunFedSc(f.fed, 4, sequential);
  auto b = RunFedSc(f.fed, 4, parallel);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->global_labels, b->global_labels);
  EXPECT_TRUE(AllClose(a->samples, b->samples, 0.0));
  EXPECT_EQ(a->comm.uplink_bits, b->comm.uplink_bits);
}

TEST(FedScTest, QuantizedUplinkStillClusters) {
  Federation f = MakeFederation(4, 60, 12, 2, 61);
  FedScOptions options;
  options.channel.quantize = true;
  options.channel.bits_per_value = 8;
  auto result = RunFedSc(f.fed, 4, options);
  ASSERT_TRUE(result.ok());
  EXPECT_GE(ClusteringAccuracy(f.data.labels, result->global_labels), 95.0);
}

TEST(FedScTest, OutlierTrimmingImprovesContaminatedClusters) {
  // Build a device whose cluster contains a few gross outliers; with
  // trimming, the uploaded sample stays inside the true subspace.
  Rng rng(67);
  const int64_t n = 16;
  const Matrix basis = RandomOrthonormalBasis(n, 2, &rng);
  const int64_t clean = 30;
  Matrix points(n, clean + 4);
  for (int64_t j = 0; j < clean; ++j) {
    const Vector coeff = rng.GaussianVector(2);
    Gemv(Trans::kNo, 1.0, basis, coeff.data(), 0.0, points.ColData(j));
  }
  for (int64_t j = clean; j < clean + 4; ++j) {
    const Vector junk = rng.UnitSphere(n);  // arbitrary directions
    points.SetCol(j, junk);
  }
  points.NormalizeColumns();

  FedScOptions options;
  options.use_eigengap = false;
  options.max_local_clusters = 1;  // single local cluster, contaminated
  options.sample_dim = 2;

  auto measure_leakage = [&](double trim) {
    options.trim_fraction = trim;
    auto local = LocalClusterAndSample(points, options, 5);
    EXPECT_TRUE(local.ok());
    // Component of the sample outside the true subspace.
    Vector coords = Gemv(Trans::kTrans, basis, local->samples.Col(0));
    Vector inside = Gemv(Trans::kNo, basis, coords);
    Axpy(-1.0, local->samples.ColData(0), inside.data(), n);
    return Norm2(inside.data(), n);
  };
  const double leak_untrimmed = measure_leakage(0.0);
  const double leak_trimmed = measure_leakage(0.2);
  EXPECT_LT(leak_trimmed, leak_untrimmed);
  EXPECT_LT(leak_trimmed, 1e-8);
}

TEST(FedScTest, OutOfSampleAssignmentAgreesWithTraining) {
  Federation f = MakeFederation(4, 70, 12, 2, 71);
  auto result = RunFedSc(f.fed, 4, FedScOptions{});
  ASSERT_TRUE(result.ok());
  ASSERT_GE(ClusteringAccuracy(f.data.labels, result->global_labels), 99.0);

  // Re-assigning the training points through the sample subspaces must
  // agree with the protocol's own labels.
  auto reassigned = AssignNewPoints(*result, 4, f.data.points);
  ASSERT_TRUE(reassigned.ok()) << reassigned.status().ToString();
  double agree = 0.0;
  for (size_t i = 0; i < reassigned->size(); ++i) {
    agree += (*reassigned)[i] == result->global_labels[i];
  }
  EXPECT_GE(100.0 * agree / static_cast<double>(reassigned->size()), 97.0);

  // Fresh points from the generating subspaces land in the right clusters.
  Rng rng(72);
  Matrix fresh(24, 40);
  std::vector<int64_t> fresh_truth;
  for (int64_t j = 0; j < 40; ++j) {
    const int64_t l = j % 4;
    const Vector coeff = rng.GaussianVector(3);
    Gemv(Trans::kNo, 1.0, f.data.bases[static_cast<size_t>(l)], coeff.data(),
         0.0, fresh.ColData(j));
    fresh_truth.push_back(l);
  }
  auto fresh_labels = AssignNewPoints(*result, 4, fresh);
  ASSERT_TRUE(fresh_labels.ok());
  EXPECT_GE(ClusteringAccuracy(fresh_truth, *fresh_labels), 95.0);

  // Validation.
  EXPECT_FALSE(AssignNewPoints(*result, 0, fresh).ok());
  EXPECT_FALSE(AssignNewPoints(*result, 4, Matrix(7, 2)).ok());
}

}  // namespace
}  // namespace fedsc
