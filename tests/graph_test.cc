#include <cmath>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "graph/components.h"
#include "graph/eigengap.h"
#include "graph/laplacian.h"
#include "linalg/eig.h"

namespace fedsc {
namespace {

// Block-diagonal affinity: `blocks` cliques of the given sizes with
// within-block weight 1 plus optional cross-block noise.
Matrix BlockAffinity(const std::vector<int64_t>& sizes, double cross_weight,
                     Rng* rng) {
  int64_t n = 0;
  for (int64_t s : sizes) n += s;
  Matrix w(n, n);
  int64_t offset = 0;
  for (int64_t s : sizes) {
    for (int64_t i = 0; i < s; ++i) {
      for (int64_t j = 0; j < s; ++j) {
        if (i != j) w(offset + i, offset + j) = 1.0;
      }
    }
    offset += s;
  }
  if (cross_weight > 0.0) {
    for (int64_t i = 0; i < n; ++i) {
      for (int64_t j = i + 1; j < n; ++j) {
        if (w(i, j) == 0.0) {
          const double v = cross_weight * rng->Uniform();
          w(i, j) = v;
          w(j, i) = v;
        }
      }
    }
  }
  return w;
}

TEST(LaplacianTest, Degrees) {
  Matrix w(2, 2);
  w(0, 1) = 2.0;
  w(1, 0) = 2.0;
  const Vector d = Degrees(w);
  EXPECT_EQ(d[0], 2.0);
  EXPECT_EQ(d[1], 2.0);
}

TEST(LaplacianTest, SpectrumInZeroTwo) {
  Rng rng(1);
  const Matrix w = BlockAffinity({5, 7}, 0.3, &rng);
  auto values = SymmetricEigenvalues(NormalizedLaplacian(w));
  ASSERT_TRUE(values.ok());
  for (double v : *values) {
    EXPECT_GE(v, -1e-10);
    EXPECT_LE(v, 2.0 + 1e-10);
  }
}

TEST(LaplacianTest, ZeroEigenvaluesCountComponents) {
  Rng rng(2);
  const Matrix w = BlockAffinity({4, 6, 5}, 0.0, &rng);
  auto values = SymmetricEigenvalues(NormalizedLaplacian(w));
  ASSERT_TRUE(values.ok());
  int zeros = 0;
  for (double v : *values) zeros += std::fabs(v) < 1e-10;
  EXPECT_EQ(zeros, 3);
}

TEST(LaplacianTest, IsolatedVertexContributesZeroRow) {
  Matrix w(3, 3);
  w(0, 1) = 1.0;
  w(1, 0) = 1.0;  // vertex 2 isolated
  const Matrix l = NormalizedLaplacian(w);
  for (int64_t j = 0; j < 3; ++j) {
    EXPECT_EQ(l(2, j), 0.0);
    EXPECT_EQ(l(j, 2), 0.0);
  }
  auto values = SymmetricEigenvalues(l);
  ASSERT_TRUE(values.ok());
  int zeros = 0;
  for (double v : *values) zeros += std::fabs(v) < 1e-10;
  EXPECT_EQ(zeros, 2);  // the pair + the isolated vertex
}

TEST(LaplacianTest, SparseAndDenseNormalizedAdjacencyAgree) {
  Rng rng(3);
  const Matrix w = BlockAffinity({3, 4}, 0.5, &rng);
  const Matrix dense = NormalizedAdjacency(w);
  const Matrix via_sparse = NormalizedAdjacency(SparsifyDense(w)).ToDense();
  EXPECT_TRUE(AllClose(dense, via_sparse, 1e-12));
}

TEST(ComponentsTest, CountsAndLabels) {
  // 0-1, 2-3-4, 5 alone.
  const SparseMatrix adj = SparseMatrix::FromTriplets(
      6, 6, {{0, 1, 1.0}, {2, 3, 1.0}, {3, 4, 1.0}});
  const ComponentsResult r = ConnectedComponents(adj);
  EXPECT_EQ(r.count, 3);
  EXPECT_EQ(r.labels[0], r.labels[1]);
  EXPECT_EQ(r.labels[2], r.labels[3]);
  EXPECT_EQ(r.labels[3], r.labels[4]);
  EXPECT_NE(r.labels[0], r.labels[2]);
  EXPECT_NE(r.labels[5], r.labels[0]);
  EXPECT_NE(r.labels[5], r.labels[2]);
}

TEST(ComponentsTest, AsymmetricEntriesConnectBothWays) {
  // Edge stored in one triangle only.
  const SparseMatrix adj =
      SparseMatrix::FromTriplets(3, 3, {{0, 2, 1.0}});
  const ComponentsResult r = ConnectedComponents(adj);
  EXPECT_EQ(r.count, 2);
  EXPECT_EQ(r.labels[0], r.labels[2]);
}

TEST(ComponentsTest, EmptyGraph) {
  const ComponentsResult r =
      ConnectedComponents(SparseMatrix::FromTriplets(4, 4, {}));
  EXPECT_EQ(r.count, 4);
}

class EigengapBlockTest : public ::testing::TestWithParam<int> {};

TEST_P(EigengapBlockTest, DetectsComponentCount) {
  const int k = GetParam();
  Rng rng(100 + k);
  std::vector<int64_t> sizes;
  for (int i = 0; i < k; ++i) sizes.push_back(4 + rng.UniformInt(5));
  const Matrix w = BlockAffinity(sizes, 0.0, &rng);
  auto r = EstimateClusterCount(w);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, k);
}

INSTANTIATE_TEST_SUITE_P(BlockCounts, EigengapBlockTest,
                         ::testing::Values(2, 3, 5, 8));

TEST(EigengapTest, RobustToWeakCrossConnections) {
  Rng rng(7);
  const Matrix w = BlockAffinity({8, 8, 8}, 0.05, &rng);
  auto r = EstimateClusterCount(w);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 3);
}

TEST(EigengapTest, MaxClustersCap) {
  Rng rng(8);
  const Matrix w = BlockAffinity({5, 5, 5, 5, 5}, 0.0, &rng);
  EigengapOptions options;
  options.max_clusters = 3;
  auto r = EstimateClusterCount(w, options);
  ASSERT_TRUE(r.ok());
  EXPECT_LE(*r, 3);
  EXPECT_GE(*r, 1);
}

TEST(EigengapTest, FromSpectrumDirect) {
  auto r = EstimateClusterCountFromSpectrum({0.0, 0.0, 0.0, 0.9, 1.0, 1.1});
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 3);
  EXPECT_FALSE(EstimateClusterCountFromSpectrum({0.5}).ok());
}

TEST(EigengapTest, RejectsTinyInput) {
  EXPECT_FALSE(EstimateClusterCount(Matrix(1, 1)).ok());
  EXPECT_FALSE(EstimateClusterCount(Matrix(3, 2)).ok());
}

}  // namespace
}  // namespace fedsc
