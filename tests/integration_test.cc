// End-to-end integration tests: miniature versions of every experiment in
// the benchmark suite, checking the *shapes* the paper reports (who wins,
// monotone trends), plus failure injection across module boundaries.

#include <cmath>

#include <gtest/gtest.h>

#include "core/fedsc.h"
#include "core/theory.h"
#include "data/realworld_sim.h"
#include "data/synthetic.h"
#include "fed/kfed.h"
#include "fed/partition.h"
#include "metrics/clustering_metrics.h"
#include "sc/pipeline.h"

namespace fedsc {
namespace {

struct MiniFederation {
  Dataset data;
  FederatedDataset fed;
};

MiniFederation Make(const SyntheticOptions& synth, int64_t devices,
                    int64_t l_prime, uint64_t seed) {
  auto data = GenerateUnionOfSubspaces(synth);
  EXPECT_TRUE(data.ok());
  PartitionOptions partition;
  partition.num_devices = devices;
  partition.clusters_per_device = l_prime;
  partition.seed = seed;
  auto fed = PartitionAcrossDevices(*data, partition);
  EXPECT_TRUE(fed.ok());
  return {std::move(data).value(), std::move(fed).value()};
}

// Fig. 4 in miniature: Fed-SC (SSC) beats k-FED on subspace data under
// heterogeneity.
TEST(IntegrationTest, Fig4Shape_FedScBeatsKFed) {
  SyntheticOptions synth;
  synth.ambient_dim = 20;
  synth.subspace_dim = 4;
  synth.num_subspaces = 8;
  synth.points_per_subspace = 100;
  synth.seed = 101;
  // 32 devices x L'=2 over 8 subspaces: Z_l ~ 8 > d + 1, the sample-count
  // condition of Theorem 1.
  MiniFederation m = Make(synth, 32, 2, 11);

  auto fedsc = RunFedSc(m.fed, 8, FedScOptions{});
  ASSERT_TRUE(fedsc.ok()) << fedsc.status().ToString();
  KFedOptions kfed_options;
  kfed_options.local_k = 2;
  auto kfed = RunKFed(m.fed, 8, kfed_options);
  ASSERT_TRUE(kfed.ok());

  const double acc_fedsc =
      ClusteringAccuracy(m.data.labels, fedsc->global_labels);
  const double acc_kfed =
      ClusteringAccuracy(m.data.labels, kfed->global_labels);
  EXPECT_GE(acc_fedsc, 95.0);
  // Points drawn from a subspace union are not centroid-separable: k-FED
  // lands far below Fed-SC.
  EXPECT_GT(acc_fedsc, acc_kfed + 20.0);
}

// Fig. 5 in miniature: accuracy degrades as L'/L grows.
TEST(IntegrationTest, Fig5Shape_HeterogeneityHelps) {
  SyntheticOptions synth;
  synth.ambient_dim = 16;
  synth.subspace_dim = 4;
  synth.num_subspaces = 10;
  synth.points_per_subspace = 120;
  synth.seed = 103;

  auto accuracy_at = [&](int64_t l_prime) {
    MiniFederation m = Make(synth, 50, l_prime, 13);
    auto result = RunFedSc(m.fed, 10, FedScOptions{});
    EXPECT_TRUE(result.ok()) << result.status().ToString();
    return ClusteringAccuracy(m.data.labels, result->global_labels);
  };
  const double acc2 = accuracy_at(2);
  const double acc_iid = accuracy_at(0);
  EXPECT_GE(acc2, acc_iid - 3.0);
  EXPECT_GE(acc2, 90.0);
}

// Fig. 6 in miniature: Fed-SC at least matches centralized SSC in accuracy
// while running faster on a federation of this size.
TEST(IntegrationTest, Fig6Shape_FedScVsCentralized) {
  SyntheticOptions synth;
  synth.ambient_dim = 20;
  synth.subspace_dim = 4;
  synth.num_subspaces = 10;
  synth.points_per_subspace = 60;
  synth.seed = 107;
  MiniFederation m = Make(synth, 30, 3, 17);

  auto fedsc = RunFedSc(m.fed, 10, FedScOptions{});
  ASSERT_TRUE(fedsc.ok());
  auto central = RunSubspaceClustering(m.data.points, 10);
  ASSERT_TRUE(central.ok());

  const double acc_fed =
      ClusteringAccuracy(m.data.labels, fedsc->global_labels);
  const double acc_central =
      ClusteringAccuracy(m.data.labels, central->labels);
  EXPECT_GE(acc_fed, acc_central - 5.0);
}

// Fig. 7 in miniature: accuracy is flat for small delta and eventually
// degrades for very large delta.
TEST(IntegrationTest, Fig7Shape_NoiseRobustness) {
  SyntheticOptions synth;
  synth.ambient_dim = 20;
  synth.subspace_dim = 4;
  synth.num_subspaces = 6;
  synth.points_per_subspace = 100;
  synth.seed = 109;
  MiniFederation m = Make(synth, 24, 2, 19);

  auto accuracy_at = [&](double delta) {
    FedScOptions options;
    options.channel.noise_delta = delta;
    auto result = RunFedSc(m.fed, 6, options);
    EXPECT_TRUE(result.ok());
    return ClusteringAccuracy(m.data.labels, result->global_labels);
  };
  const double clean = accuracy_at(0.0);
  const double mild = accuracy_at(0.05);
  EXPECT_GE(clean, 95.0);
  EXPECT_GE(mild, clean - 5.0);  // robust to mild channel noise
}

// Table III in miniature: on a high-dimensional real-world-like dataset,
// Fed-SC beats both k-FED and k-FED + PCA.
TEST(IntegrationTest, Table3Shape_RealWorldSim) {
  EmnistSimOptions emnist;
  emnist.num_classes = 6;
  emnist.ambient_dim = 128;
  emnist.min_class_size = 60;
  emnist.max_class_size = 120;
  emnist.seed = 113;
  auto data = GenerateEmnistSim(emnist);
  ASSERT_TRUE(data.ok());
  PartitionOptions partition;
  partition.num_devices = 30;
  partition.clusters_per_device = 2;
  partition.seed = 23;
  auto fed = PartitionAcrossDevices(*data, partition);
  ASSERT_TRUE(fed.ok());

  FedScOptions fed_options;
  fed_options.use_eigengap = false;
  fed_options.max_local_clusters = 2;  // the paper's upper-bound mode
  fed_options.sample_dim = 0;
  auto fedsc = RunFedSc(*fed, 6, fed_options);
  ASSERT_TRUE(fedsc.ok()) << fedsc.status().ToString();

  KFedOptions kfed_options;
  kfed_options.local_k = 2;
  auto kfed = RunKFed(*fed, 6, kfed_options);
  ASSERT_TRUE(kfed.ok());
  KFedOptions pca_options = kfed_options;
  pca_options.pca_dim = 10;
  auto kfed_pca = RunKFed(*fed, 6, pca_options);
  ASSERT_TRUE(kfed_pca.ok());

  const double acc_fedsc =
      ClusteringAccuracy(data->labels, fedsc->global_labels);
  const double acc_kfed =
      ClusteringAccuracy(data->labels, kfed->global_labels);
  const double acc_pca =
      ClusteringAccuracy(data->labels, kfed_pca->global_labels);
  EXPECT_GT(acc_fedsc, acc_kfed);
  EXPECT_GT(acc_fedsc, acc_pca + 10.0);
  EXPECT_GE(acc_fedsc, 80.0);
}

// Table IV in miniature: accuracy degrades as L' grows.
TEST(IntegrationTest, Table4Shape_LocalClusterSweep) {
  EmnistSimOptions emnist;
  emnist.num_classes = 8;
  emnist.ambient_dim = 96;
  emnist.min_class_size = 80;
  emnist.max_class_size = 140;
  emnist.seed = 127;
  auto data = GenerateEmnistSim(emnist);
  ASSERT_TRUE(data.ok());

  auto accuracy_at = [&](int64_t l_prime) {
    PartitionOptions partition;
    partition.num_devices = 48;
    partition.clusters_per_device = l_prime;
    partition.seed = 29;
    auto fed = PartitionAcrossDevices(*data, partition);
    EXPECT_TRUE(fed.ok());
    FedScOptions options;
    options.use_eigengap = false;
    options.max_local_clusters = l_prime;
    auto result = RunFedSc(*fed, 8, options);
    EXPECT_TRUE(result.ok()) << result.status().ToString();
    return ClusteringAccuracy(data->labels, result->global_labels);
  };
  const double acc2 = accuracy_at(2);
  const double acc6 = accuracy_at(6);
  EXPECT_GE(acc2, acc6 - 3.0);  // monotone-ish degradation
  EXPECT_GE(acc2, 85.0);
}

// Theory <-> practice: a federation whose subspace affinities sit below the
// Corollary bound clusters exactly.
TEST(IntegrationTest, TheoremConditionsPredictSuccess) {
  SyntheticOptions synth;
  synth.ambient_dim = 24;
  synth.subspace_dim = 3;
  synth.num_subspaces = 4;
  synth.points_per_subspace = 80;
  synth.seed = 131;
  auto data = GenerateUnionOfSubspaces(synth);
  ASSERT_TRUE(data.ok());

  double max_affinity = 0.0;
  for (size_t a = 0; a < data->bases.size(); ++a) {
    for (size_t b = a + 1; b < data->bases.size(); ++b) {
      auto aff = SubspaceAffinity(data->bases[a], data->bases[b]);
      ASSERT_TRUE(aff.ok());
      max_affinity = std::max(max_affinity, *aff);
    }
  }
  // Random 3-dim subspaces of R^24 have low pairwise affinity.
  EXPECT_LT(max_affinity / std::sqrt(3.0), 0.75);

  PartitionOptions partition;
  partition.num_devices = 12;
  partition.clusters_per_device = 2;
  partition.seed = 31;
  auto fed = PartitionAcrossDevices(*data, partition);
  ASSERT_TRUE(fed.ok());
  auto result = RunFedSc(*fed, 4, FedScOptions{});
  ASSERT_TRUE(result.ok());
  EXPECT_GE(ClusteringAccuracy(data->labels, result->global_labels), 99.0);
}

// Failure injection: a federation with duplicate points, zero-padded
// devices, and single-point devices must not crash any stage.
TEST(IntegrationTest, FailureInjectionDegenerateFederation) {
  Rng rng(137);
  Dataset data;
  data.num_clusters = 2;
  data.points = Matrix(10, 30);
  for (int64_t j = 0; j < 30; ++j) {
    const int64_t label = j < 15 ? 0 : 1;
    data.labels.push_back(label);
    // Cluster 0 along e0/e1, cluster 1 along e2/e3, with duplicates.
    const int64_t base = label == 0 ? 0 : 2;
    data.points(base, j) = 1.0;
    data.points(base + 1, j) = (j % 3 == 0) ? 0.0 : rng.Gaussian();
  }
  data.points.NormalizeColumns();

  PartitionOptions partition;
  partition.num_devices = 25;  // some devices get 1-2 points
  partition.clusters_per_device = 1;
  partition.seed = 37;
  auto fed = PartitionAcrossDevices(data, partition);
  ASSERT_TRUE(fed.ok());
  auto result = RunFedSc(*fed, 2, FedScOptions{});
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->global_labels.size(), 30u);
}

}  // namespace
}  // namespace fedsc
