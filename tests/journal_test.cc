// Run-ledger tests: journal determinism across thread counts under a hostile
// fault mix, exact reconciliation of the per-device byte/attempt ledger
// against CommStats, the near-zero disabled path, the RunReport hook, and
// golden fixtures pinning the journal fingerprint and the report JSON key
// layout (regenerate with FEDSC_UPDATE_GOLDEN=1 ./journal_test).

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/journal.h"
#include "common/metrics.h"
#include "common/profile.h"
#include "common/trace.h"
#include "core/fedsc.h"
#include "core/report.h"
#include "data/synthetic.h"
#include "fed/partition.h"

namespace fedsc {
namespace {

// The FedScDeterminismTest federation: 4 subspaces over 6 devices.
Result<FederatedDataset> MakeFederation() {
  SyntheticOptions synth;
  synth.ambient_dim = 24;
  synth.subspace_dim = 3;
  synth.num_subspaces = 4;
  synth.points_per_subspace = 30;
  synth.seed = 31;
  FEDSC_ASSIGN_OR_RETURN(Dataset data, GenerateUnionOfSubspaces(synth));
  PartitionOptions partition;
  partition.num_devices = 6;
  partition.clusters_per_device = 2;
  partition.seed = 31 ^ 0xABCDEF;
  return PartitionAcrossDevices(data, partition);
}

// A hostile mix: dropouts, stragglers, transient losses, byzantine payloads
// and wire corruption, with retries — the configuration the acceptance
// checklist names. Quorum is relaxed so the round still completes.
FedScOptions FaultyOptions(int num_threads) {
  FedScOptions options;
  options.num_threads = num_threads;
  options.faults.dropout_rate = 0.2;
  options.faults.straggler_rate = 0.3;
  options.faults.transient_rate = 0.3;
  options.faults.byzantine_rate = 0.2;
  options.faults.wire_corrupt_rate = 0.2;
  options.faults.seed = 0xFA17;
  options.retry.max_attempts = 3;
  options.retry.timeout_ms = 200;
  options.quorum = 0.3;
  return options;
}

Result<FedScResult> RunJournaled(const FederatedDataset& fed,
                                 const FedScOptions& options) {
  ResetJournal();
  EnableJournal(true);
  auto result = RunFedSc(fed, 4, options);
  EnableJournal(false);
  return result;
}

int64_t FieldInt(const JournalEvent& event, const char* key,
                 int64_t missing = -1) {
  for (const auto& [k, v] : event.fields) {
    if (k == key) return std::atoll(v.c_str());
  }
  return missing;
}

bool HasField(const JournalEvent& event, const char* key) {
  for (const auto& [k, v] : event.fields) {
    if (k == key) return true;
  }
  return false;
}

TEST(JournalDeterminismTest, FingerprintBitIdenticalAcrossThreadCounts) {
  auto fed = MakeFederation();
  ASSERT_TRUE(fed.ok()) << fed.status().ToString();

  auto serial = RunJournaled(*fed, FaultyOptions(1));
  ASSERT_TRUE(serial.ok()) << serial.status().ToString();
  const std::string expected = JournalFingerprint();
  ASSERT_FALSE(expected.empty());
  // The fingerprint must not leak wall timestamps...
  EXPECT_EQ(expected.find("wall_ns"), std::string::npos);
  // ...while the full JSONL carries them.
  EXPECT_NE(JournalJsonlString(/*include_wall=*/true).find("wall_ns"),
            std::string::npos);

  for (int threads : {2, 8}) {
    auto threaded = RunJournaled(*fed, FaultyOptions(threads));
    ASSERT_TRUE(threaded.ok()) << threaded.status().ToString();
    EXPECT_EQ(expected, JournalFingerprint())
        << "journal diverged at num_threads=" << threads;
  }
}

TEST(JournalLedgerTest, EventTaxonomyCoversTheRun) {
  auto fed = MakeFederation();
  ASSERT_TRUE(fed.ok());
  auto result = RunJournaled(*fed, FaultyOptions(2));
  ASSERT_TRUE(result.ok()) << result.status().ToString();

  const std::vector<JournalEvent> events = SnapshotJournal();
  ASSERT_FALSE(events.empty());

  // seq is dense and in emission order.
  for (size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].seq, static_cast<int64_t>(i));
  }

  std::map<std::string, int64_t> by_type;
  for (const JournalEvent& event : events) ++by_type[event.type];

  EXPECT_EQ(by_type["run_start"], 1);
  EXPECT_EQ(by_type["run_finish"], 1);
  EXPECT_EQ(by_type["scheduled"], 6);  // one per device, up front
  EXPECT_GT(by_type["upload_attempt"], 0);
  EXPECT_EQ(by_type["quorum_reached"] + by_type["quorum_missed"], 1);
  EXPECT_EQ(by_type["central_start"], 1);
  EXPECT_EQ(by_type["central_finish"], 1);
  EXPECT_EQ(by_type["broadcast"], 1);
  EXPECT_EQ(events.front().type, "run_start");
  EXPECT_EQ(events.back().type, "run_finish");

  // Device lifecycle events carry the device id; phase events carry -1.
  for (const JournalEvent& event : events) {
    if (event.type == "run_start" || event.type == "run_finish" ||
        event.type == "quorum_reached" || event.type == "quorum_missed" ||
        event.type == "central_start" || event.type == "central_finish" ||
        event.type == "broadcast") {
      EXPECT_EQ(event.device, -1) << event.type;
    } else {
      EXPECT_GE(event.device, 0) << event.type;
      EXPECT_LT(event.device, 6) << event.type;
    }
  }

  // This fault mix at these rates produces rejected devices; their journal
  // trail must name the fault class up front (scheduled) and the fate at the
  // end (accepted / quarantined / dropped).
  int64_t resolved = 0;
  resolved += by_type["accepted"];
  resolved += by_type["quarantined"];
  resolved += by_type["dropped"];
  EXPECT_EQ(resolved, 6);
  for (const JournalEvent& event : events) {
    if (event.type == "scheduled") EXPECT_TRUE(HasField(event, "fault"));
  }
}

TEST(JournalLedgerTest, WireBytesAndAttemptsReconcileWithCommStats) {
  auto fed = MakeFederation();
  ASSERT_TRUE(fed.ok());
  auto result = RunJournaled(*fed, FaultyOptions(2));
  ASSERT_TRUE(result.ok()) << result.status().ToString();

  const std::vector<JournalEvent> events = SnapshotJournal();

  // Every byte CommStats charges to the uplink is journaled on exactly one
  // event: a straggler timeout, a transient loss, a wire rejection, or a
  // delivery (dropout timeouts transmit nothing and journal 0 bytes).
  int64_t journaled_wire_bytes = 0;
  int64_t attempts = 0;
  int64_t retries = 0;
  int64_t timeouts = 0;
  int64_t downlink_values = 0;
  for (const JournalEvent& event : events) {
    if (event.type == "timeout" || event.type == "transient_loss" ||
        event.type == "wire_rejected" || event.type == "delivered") {
      ASSERT_TRUE(HasField(event, "wire_bytes")) << event.type;
      journaled_wire_bytes += FieldInt(event, "wire_bytes");
    }
    if (event.type == "upload_attempt") ++attempts;
    if (event.type == "retry") ++retries;
    if (event.type == "timeout") ++timeouts;
    if (event.type == "downlink") downlink_values += FieldInt(event, "values");
  }
  ASSERT_GT(journaled_wire_bytes, 0);
  EXPECT_EQ(journaled_wire_bytes, result->comm.uplink_wire_bytes);
  EXPECT_EQ(retries, result->comm.retries);
  EXPECT_EQ(timeouts, result->comm.timeouts);
  EXPECT_EQ(downlink_values, result->comm.downlink_values);

  // Per-device attempt counts match the device reports exactly.
  int64_t reported_attempts = 0;
  std::map<int64_t, int64_t> attempts_by_device;
  for (const JournalEvent& event : events) {
    if (event.type == "upload_attempt") ++attempts_by_device[event.device];
  }
  for (const DeviceReport& report : result->device_reports) {
    reported_attempts += report.attempts;
    EXPECT_EQ(attempts_by_device[report.device], report.attempts)
        << "device " << report.device;
  }
  EXPECT_EQ(attempts, reported_attempts);

  // Delivered events sit on the simulated clock; the round's sim_uplink_ms
  // is the worst device timeline, so no event can exceed it.
  for (const JournalEvent& event : events) {
    if (event.device >= 0 && event.sim_ms >= 0) {
      EXPECT_LE(event.sim_ms, result->comm.sim_uplink_ms) << event.type;
    }
  }
}

TEST(JournalRegistryTest, DisabledPathRecordsNothing) {
  ResetJournal();
  EnableJournal(false);
  JournalRecord("should_not_exist", 0, 0, {{"k", int64_t{1}}});
  // JournalRecord itself always records (it is the macro that gates);
  // clear again and go through the macro.
  ResetJournal();
  FEDSC_JOURNAL_EVENT("also_not_recorded", 0, 0, {{"k", int64_t{1}}});
  EXPECT_TRUE(SnapshotJournal().empty());
  EXPECT_TRUE(JournalFingerprint().empty());

  auto fed = MakeFederation();
  ASSERT_TRUE(fed.ok());
  FedScOptions options;
  options.num_threads = 2;
  auto result = RunFedSc(*fed, 4, options);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(SnapshotJournal().empty());
}

TEST(JournalRegistryTest, DisabledMacroSkipsArgumentEvaluation) {
  ResetJournal();
  EnableJournal(false);
  int evaluations = 0;
  auto expensive = [&evaluations]() {
    ++evaluations;
    return int64_t{7};
  };
  FEDSC_JOURNAL_EVENT("test/disabled", 0, 0, {{"x", expensive()}});
  EXPECT_EQ(evaluations, 0);

  EnableJournal(true);
  FEDSC_JOURNAL_EVENT("test/enabled", 3, 12, {{"x", expensive()}});
  EnableJournal(false);
  EXPECT_EQ(evaluations, 1);
  const std::vector<JournalEvent> events = SnapshotJournal();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].type, "test/enabled");
  EXPECT_EQ(events[0].device, 3);
  EXPECT_EQ(events[0].sim_ms, 12);
  EXPECT_EQ(FieldInt(events[0], "x"), 7);
  const std::string line = JournalEventJson(events[0], /*include_wall=*/false);
  EXPECT_EQ(line,
            "{\"v\":2,\"seq\":0,\"type\":\"test/enabled\",\"device\":3,"
            "\"sim_ms\":12,\"x\":7}");
  ResetJournal();
}

TEST(JournalRegistryTest, StringsAreEscaped) {
  ResetJournal();
  EnableJournal(true);
  FEDSC_JOURNAL_EVENT("test/escape", -1, -1, {{"s", "quo\"te\\n"}});
  EnableJournal(false);
  const std::string line = JournalJsonlString(/*include_wall=*/false);
  EXPECT_NE(line.find("\"s\":\"quo\\\"te\\\\n\""), std::string::npos);
  ResetJournal();
}

TEST(RunReportTest, CollectReportHookAttachesAFullReport) {
  auto fed = MakeFederation();
  ASSERT_TRUE(fed.ok());

  ResetJournal();
  ResetMetrics();
  ResetTrace();
  EnableJournal(true);
  EnableMetrics(true);
  EnableTracing(true);
  FedScOptions options = FaultyOptions(2);
  options.collect_report = true;
  auto result = RunFedSc(*fed, 4, options);
  EnableJournal(false);
  EnableMetrics(false);
  EnableTracing(false);
  ASSERT_TRUE(result.ok()) << result.status().ToString();

  ASSERT_NE(result->report, nullptr);
  const RunReport& report = *result->report;
  EXPECT_TRUE(report.has_run);
  EXPECT_EQ(report.devices, 6);
  EXPECT_EQ(report.participating_devices, result->participating_devices);
  EXPECT_EQ(report.comm.uplink_wire_bytes, result->comm.uplink_wire_bytes);
  EXPECT_FALSE(report.journal.empty());
  EXPECT_FALSE(report.profile.spans.empty());
  EXPECT_FALSE(report.metrics.counters.empty());
  EXPECT_FALSE(report.manifest.options_fingerprint.empty());
  EXPECT_EQ(report.manifest.num_threads, 2);

  const std::string json = RunReportJson(report);
  EXPECT_NE(json.find("\"schema_version\":3"), std::string::npos);
  EXPECT_NE(json.find("\"journal_schema_version\":2"), std::string::npos);
  EXPECT_NE(json.find("\"manifest\":"), std::string::npos);
  EXPECT_NE(json.find("\"run\":{"), std::string::npos);
  EXPECT_NE(json.find("\"journal\":["), std::string::npos);
  EXPECT_NE(json.find("\"profile\":"), std::string::npos);
  EXPECT_NE(json.find("\"metrics\":"), std::string::npos);
  ResetJournal();
  ResetMetrics();
  ResetTrace();
}

TEST(RunReportTest, OptionsFingerprintTracksConfigNotThreads) {
  FedScOptions a;
  FedScOptions b;
  b.num_threads = 16;  // excluded by design — the determinism contract
  EXPECT_EQ(FedScOptionsFingerprint(a), FedScOptionsFingerprint(b));

  b = a;
  b.faults.dropout_rate = 0.5;
  EXPECT_NE(FedScOptionsFingerprint(a), FedScOptionsFingerprint(b));
  b = a;
  b.seed = a.seed + 1;
  EXPECT_NE(FedScOptionsFingerprint(a), FedScOptionsFingerprint(b));
}

// ---------------------------------------------------------------------------
// Golden fixtures.

std::string GoldenPath(const char* file) {
  return std::string(FEDSC_TESTDATA_DIR) + "/" + file;
}

bool ReadFileText(const std::string& path, std::string* out) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return false;
  out->clear();
  char buffer[4096];
  size_t n;
  while ((n = std::fread(buffer, 1, sizeof(buffer), f)) > 0) {
    out->append(buffer, n);
  }
  std::fclose(f);
  return true;
}

void WriteFileText(const std::string& path, const std::string& text) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr) << "cannot write " << path;
  ASSERT_EQ(std::fwrite(text.data(), 1, text.size(), f), text.size());
  std::fclose(f);
}

// The golden journal run: fixed config, serial, no stragglers (their delay
// draw goes through libm's log, which we do not want pinned into a fixture).
Result<FedScResult> RunGoldenJournal() {
  auto fed = MakeFederation();
  if (!fed.ok()) return fed.status();
  FedScOptions options;
  options.num_threads = 1;
  options.faults.dropout_rate = 0.25;
  options.faults.transient_rate = 0.25;
  options.faults.byzantine_rate = 0.2;
  options.faults.wire_corrupt_rate = 0.2;
  options.faults.seed = 0x901dULL;
  options.retry.max_attempts = 2;
  options.quorum = 0.3;
  return RunJournaled(*fed, options);
}

TEST(GoldenFixtureTest, JournalFingerprintMatchesTheCommittedLedger) {
  auto result = RunGoldenJournal();
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  const std::string fingerprint = JournalFingerprint();
  ASSERT_FALSE(fingerprint.empty());

  const std::string path = GoldenPath("journal_golden.jsonl");
  if (std::getenv("FEDSC_UPDATE_GOLDEN") != nullptr) {
    WriteFileText(path, fingerprint);
    return;
  }
  std::string committed;
  ASSERT_TRUE(ReadFileText(path, &committed))
      << "missing golden fixture " << path
      << " (generate with FEDSC_UPDATE_GOLDEN=1)";
  EXPECT_EQ(fingerprint, committed)
      << "journal ledger changed; if intentional, bump kJournalSchemaVersion "
         "as needed and regenerate with FEDSC_UPDATE_GOLDEN=1";
}

// Extracts the sorted set of dotted key paths from a JSON document (arrays
// contribute a "[]" segment). Values are discarded, so the fixture pins the
// report's *layout* — which keys exist where — not its numbers.
class KeyPathScanner {
 public:
  explicit KeyPathScanner(const std::string& json) : json_(json) {}

  std::set<std::string> Scan() {
    pos_ = 0;
    Value("");
    return paths_;
  }

 private:
  void SkipWs() {
    while (pos_ < json_.size() &&
           (json_[pos_] == ' ' || json_[pos_] == '\n' || json_[pos_] == '\t' ||
            json_[pos_] == '\r')) {
      ++pos_;
    }
  }

  std::string ParseString() {
    EXPECT_EQ(json_[pos_], '"');
    ++pos_;
    std::string out;
    while (pos_ < json_.size() && json_[pos_] != '"') {
      if (json_[pos_] == '\\') ++pos_;
      out += json_[pos_++];
    }
    ++pos_;  // closing quote
    return out;
  }

  void Value(const std::string& prefix) {
    SkipWs();
    if (pos_ >= json_.size()) return;
    const char c = json_[pos_];
    if (c == '{') {
      ++pos_;
      SkipWs();
      while (pos_ < json_.size() && json_[pos_] != '}') {
        const std::string key = ParseString();
        const std::string path = prefix.empty() ? key : prefix + "." + key;
        paths_.insert(path);
        SkipWs();
        EXPECT_EQ(json_[pos_], ':');
        ++pos_;
        Value(path);
        SkipWs();
        if (json_[pos_] == ',') {
          ++pos_;
          SkipWs();
        }
      }
      ++pos_;  // '}'
    } else if (c == '[') {
      ++pos_;
      SkipWs();
      while (pos_ < json_.size() && json_[pos_] != ']') {
        Value(prefix + ".[]");
        SkipWs();
        if (json_[pos_] == ',') {
          ++pos_;
          SkipWs();
        }
      }
      ++pos_;  // ']'
    } else if (c == '"') {
      ParseString();
    } else {
      // number / true / false / null
      while (pos_ < json_.size() && json_[pos_] != ',' && json_[pos_] != '}' &&
             json_[pos_] != ']') {
        ++pos_;
      }
    }
  }

  const std::string& json_;
  size_t pos_ = 0;
  std::set<std::string> paths_;
};

TEST(GoldenFixtureTest, ReportKeyLayoutMatchesTheCommittedSchema) {
  auto fed = MakeFederation();
  ASSERT_TRUE(fed.ok());

  ResetJournal();
  ResetMetrics();
  ResetTrace();
  EnableJournal(true);
  EnableMetrics(true);
  EnableTracing(true);
  FedScOptions options;
  options.num_threads = 1;
  options.faults.dropout_rate = 0.25;
  options.faults.transient_rate = 0.25;
  options.faults.byzantine_rate = 0.2;
  options.faults.wire_corrupt_rate = 0.2;
  options.faults.seed = 0x901dULL;
  options.retry.max_attempts = 2;
  options.quorum = 0.3;
  auto result = RunFedSc(*fed, 4, options);
  EnableJournal(false);
  EnableMetrics(false);
  EnableTracing(false);
  ASSERT_TRUE(result.ok()) << result.status().ToString();

  const RunReport report = BuildRunReport(options, *result);
  const std::string json = RunReportJson(report);
  std::set<std::string> paths = KeyPathScanner(json).Scan();
  // Metrics instrument names are an open set (kernels register freely);
  // drop everything below the five fixed metric sections so new counters do
  // not churn the layout fixture.
  std::set<std::string> pruned;
  for (const std::string& path : paths) {
    static const char* kOpenSets[] = {
        "metrics.counters.", "metrics.execution_counters.", "metrics.gauges.",
        "metrics.execution_gauges.", "metrics.histograms."};
    bool open = false;
    for (const char* prefix : kOpenSets) {
      if (path.rfind(prefix, 0) == 0) {
        // Keep the per-histogram layout once, under a wildcard. Histogram
        // names themselves contain dots, so match on the fixed per-snapshot
        // suffix instead of splitting the name.
        if (path.rfind("metrics.histograms.", 0) == 0) {
          static const char* kHistogramKeys[] = {"count", "sum",  "min", "max",
                                                 "p50",   "p90",  "p99",
                                                 "log2_buckets"};
          const size_t last_dot = path.rfind('.');
          const std::string leaf = path.substr(last_dot + 1);
          for (const char* key : kHistogramKeys) {
            if (leaf == key) {
              pruned.insert(std::string("metrics.histograms.*.") + key);
              break;
            }
          }
        }
        open = true;
        break;
      }
    }
    // Span names inside the profile are likewise open (any instrumented
    // scope may appear); the per-entry keys are pinned via the structs.
    if (!open) pruned.insert(path);
  }
  // Journal payload keys vary with the fault mix; prune to the fixed
  // envelope (v/seq/type/device/sim_ms/wall_ns).
  std::set<std::string> layout;
  static const std::set<std::string> kJournalEnvelope = {
      "journal.[].v",      "journal.[].seq",    "journal.[].type",
      "journal.[].device", "journal.[].sim_ms", "journal.[].wall_ns"};
  for (const std::string& path : pruned) {
    if (path.rfind("journal.[].", 0) == 0 && !kJournalEnvelope.count(path)) {
      continue;
    }
    if (path.rfind("metrics.histograms.*.log2_buckets.", 0) == 0) continue;
    layout.insert(path);
  }
  for (const std::string& path : kJournalEnvelope) {
    EXPECT_TRUE(layout.count(path)) << path;
  }

  std::string rendered;
  for (const std::string& path : layout) {
    rendered += path;
    rendered += "\n";
  }

  const std::string path = GoldenPath("report_layout_golden.txt");
  if (std::getenv("FEDSC_UPDATE_GOLDEN") != nullptr) {
    WriteFileText(path, rendered);
    ResetJournal();
    ResetMetrics();
    ResetTrace();
    return;
  }
  std::string committed;
  ASSERT_TRUE(ReadFileText(path, &committed))
      << "missing golden fixture " << path
      << " (generate with FEDSC_UPDATE_GOLDEN=1)";
  EXPECT_EQ(rendered, committed)
      << "report layout changed; if intentional, bump kReportSchemaVersion, "
         "update scripts/validate_report.py, and regenerate with "
         "FEDSC_UPDATE_GOLDEN=1";
  ResetJournal();
  ResetMetrics();
  ResetTrace();
}

TEST(ProfileTest, FullRunProducesSpansRooflineAndUtilization) {
  auto fed = MakeFederation();
  ASSERT_TRUE(fed.ok());

  ResetTrace();
  ResetMetrics();
  EnableTracing(true);
  EnableMetrics(true);
  FedScOptions options;
  options.num_threads = 4;
  auto result = RunFedSc(*fed, 4, options);
  EnableTracing(false);
  EnableMetrics(false);
  ASSERT_TRUE(result.ok()) << result.status().ToString();

  const ProfileReport profile = BuildProfileReport();
  EXPECT_GT(profile.wall_seconds, 0.0);

  // Spans: fedsc/run must appear, with exclusive <= inclusive everywhere.
  bool saw_run = false;
  bool saw_gemm = false;
  for (const SpanProfileEntry& span : profile.spans) {
    EXPECT_GT(span.count, 0) << span.name;
    EXPECT_GE(span.inclusive_seconds, 0.0) << span.name;
    EXPECT_LE(span.exclusive_seconds, span.inclusive_seconds + 1e-12)
        << span.name;
    EXPECT_LE(span.max_seconds, span.inclusive_seconds + 1e-12) << span.name;
    if (span.name == "fedsc/run") saw_run = true;
    if (span.name == "linalg/gemm") saw_gemm = true;
  }
  EXPECT_TRUE(saw_run);
  EXPECT_TRUE(saw_gemm);

  // Roofline: the GEMM row joins its span seconds with flops and bytes.
  bool saw_gemm_roofline = false;
  for (const KernelRooflineEntry& kernel : profile.kernels) {
    if (kernel.span != "linalg/gemm") continue;
    saw_gemm_roofline = true;
    EXPECT_GT(kernel.calls, 0);
    EXPECT_GT(kernel.flops, 0);
    EXPECT_GT(kernel.bytes, 0);
    EXPECT_GT(kernel.seconds, 0.0);
    EXPECT_GT(kernel.achieved_gflops, 0.0);
    EXPECT_GT(kernel.arithmetic_intensity, 0.0);
  }
  EXPECT_TRUE(saw_gemm_roofline);

  // Utilization: at least the main thread's track, busy + idle spanning at
  // most the observed wall range.
  ASSERT_FALSE(profile.threads.empty());
  for (const ThreadUtilizationEntry& thread : profile.threads) {
    EXPECT_GE(thread.busy_seconds, 0.0);
    EXPECT_GE(thread.idle_seconds, 0.0);
    EXPECT_LE(thread.busy_seconds, profile.wall_seconds + 1e-9);
  }

  // The JSON and the human table render without dying.
  const std::string json = ProfileReportJson(profile);
  EXPECT_NE(json.find("\"wall_seconds\""), std::string::npos);
  EXPECT_NE(json.find("\"kernels\""), std::string::npos);
  std::ostringstream table;
  PrintProfileSummary(profile, table);
  EXPECT_NE(table.str().find("span"), std::string::npos);
  EXPECT_NE(table.str().find("linalg/gemm"), std::string::npos);

  ResetTrace();
  ResetMetrics();
}

}  // namespace
}  // namespace fedsc
