// Logging tests: FEDSC_LOG_LEVEL parsing, the env-var hook, sink swapping,
// and the regression test for the multi-threaded interleaving bug — N
// threads each writing M lines must yield exactly N*M intact lines.

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <unistd.h>

#include <gtest/gtest.h>

#include "common/logging.h"

namespace fedsc {
namespace {

TEST(LogLevelTest, ParsesAllLevelsCaseInsensitively) {
  LogLevel level = LogLevel::kError;
  EXPECT_TRUE(ParseLogLevel("debug", &level));
  EXPECT_EQ(level, LogLevel::kDebug);
  EXPECT_TRUE(ParseLogLevel("INFO", &level));
  EXPECT_EQ(level, LogLevel::kInfo);
  EXPECT_TRUE(ParseLogLevel("Warning", &level));
  EXPECT_EQ(level, LogLevel::kWarning);
  EXPECT_TRUE(ParseLogLevel("warn", &level));
  EXPECT_EQ(level, LogLevel::kWarning);
  EXPECT_TRUE(ParseLogLevel("eRrOr", &level));
  EXPECT_EQ(level, LogLevel::kError);
}

TEST(LogLevelTest, RejectsGarbageWithoutTouchingOutput) {
  LogLevel level = LogLevel::kWarning;
  EXPECT_FALSE(ParseLogLevel("verbose", &level));
  EXPECT_EQ(level, LogLevel::kWarning);
  EXPECT_FALSE(ParseLogLevel("", &level));
  EXPECT_EQ(level, LogLevel::kWarning);
  EXPECT_FALSE(ParseLogLevel(nullptr, &level));
  EXPECT_EQ(level, LogLevel::kWarning);
}

TEST(LogLevelTest, EnvVariableSelectsLevel) {
  ASSERT_EQ(setenv("FEDSC_LOG_LEVEL", "error", /*overwrite=*/1), 0);
  EXPECT_EQ(LogLevelFromEnv(LogLevel::kInfo), LogLevel::kError);
  ASSERT_EQ(setenv("FEDSC_LOG_LEVEL", "DEBUG", 1), 0);
  EXPECT_EQ(LogLevelFromEnv(LogLevel::kInfo), LogLevel::kDebug);
  ASSERT_EQ(setenv("FEDSC_LOG_LEVEL", "nonsense", 1), 0);
  EXPECT_EQ(LogLevelFromEnv(LogLevel::kInfo), LogLevel::kInfo);
  ASSERT_EQ(unsetenv("FEDSC_LOG_LEVEL"), 0);
  EXPECT_EQ(LogLevelFromEnv(LogLevel::kWarning), LogLevel::kWarning);
}

std::vector<std::string>& CapturedLines() {
  static std::vector<std::string> lines;
  return lines;
}
std::mutex& CaptureMutex() {
  static std::mutex m;
  return m;
}
void CaptureSink(LogLevel /*level*/, const std::string& line) {
  std::lock_guard<std::mutex> lock(CaptureMutex());
  CapturedLines().push_back(line);
}

TEST(LogSinkTest, CapturesFormattedLinesAndRestores) {
  const LogLevel saved = GetLogLevel();
  SetLogLevel(LogLevel::kInfo);
  CapturedLines().clear();
  SetLogSink(&CaptureSink);
  FEDSC_LOG(Info) << "captured " << 42;
  FEDSC_LOG(Debug) << "below threshold, dropped";
  SetLogSink(nullptr);  // restore the default stderr sink
  SetLogLevel(saved);

  ASSERT_EQ(CapturedLines().size(), 1u);
  const std::string& line = CapturedLines()[0];
  EXPECT_EQ(line.rfind("[INFO logging_test.cc:", 0), 0u) << line;
  EXPECT_NE(line.find("] captured 42\n"), std::string::npos) << line;
  FEDSC_LOG(Debug) << "post-restore, still below threshold";
}

// The regression test for interleaved log lines: point fd 2 at a temp file,
// hammer the logger from many threads through the default stderr sink, and
// require every line to come back intact.
TEST(LogInterleaveTest, ConcurrentWritersEmitWholeLines) {
  constexpr int kThreads = 8;
  constexpr int kLinesPerThread = 200;

  const LogLevel saved = GetLogLevel();
  SetLogLevel(LogLevel::kInfo);

  const std::string path = testing::TempDir() + "fedsc_log_interleave.txt";
  std::fflush(stderr);
  const int saved_stderr = dup(2);
  ASSERT_GE(saved_stderr, 0);
  FILE* capture = std::fopen(path.c_str(), "w");
  ASSERT_NE(capture, nullptr);
  ASSERT_GE(dup2(fileno(capture), 2), 0);

  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([t]() {
      for (int i = 0; i < kLinesPerThread; ++i) {
        FEDSC_LOG(Info) << "interleave-probe thread=" << t << " line=" << i
                        << " payload=abcdefghijklmnopqrstuvwxyz0123456789";
      }
    });
  }
  for (std::thread& t : threads) t.join();

  std::fflush(stderr);
  ASSERT_GE(dup2(saved_stderr, 2), 0);
  close(saved_stderr);
  std::fclose(capture);
  SetLogLevel(saved);

  std::ifstream in(path);
  ASSERT_TRUE(in.is_open());
  int total = 0;
  std::vector<int> per_thread(kThreads, 0);
  std::string line;
  while (std::getline(in, line)) {
    ++total;
    // Every line must carry the full prefix and the full payload — a torn
    // write would break one of the two.
    EXPECT_EQ(line.rfind("[INFO logging_test.cc:", 0), 0u) << line;
    const size_t probe = line.find("interleave-probe thread=");
    ASSERT_NE(probe, std::string::npos) << line;
    ASSERT_GE(line.size(), 45u) << line;
    EXPECT_EQ(line.substr(line.size() - 45),
              " payload=abcdefghijklmnopqrstuvwxyz0123456789")
        << line;
    int thread_id = -1;
    ASSERT_EQ(std::sscanf(line.c_str() + probe,
                          "interleave-probe thread=%d", &thread_id),
              1)
        << line;
    ASSERT_GE(thread_id, 0);
    ASSERT_LT(thread_id, kThreads);
    ++per_thread[thread_id];
  }
  EXPECT_EQ(total, kThreads * kLinesPerThread);
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_EQ(per_thread[t], kLinesPerThread) << "thread " << t;
  }
  std::remove(path.c_str());
}

}  // namespace
}  // namespace fedsc
