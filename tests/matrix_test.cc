#include <cmath>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "linalg/matrix.h"

namespace fedsc {
namespace {

TEST(MatrixTest, DefaultIsEmpty) {
  Matrix m;
  EXPECT_EQ(m.rows(), 0);
  EXPECT_EQ(m.cols(), 0);
  EXPECT_TRUE(m.empty());
}

TEST(MatrixTest, ConstructZeroInitialized) {
  Matrix m(3, 4);
  EXPECT_EQ(m.rows(), 3);
  EXPECT_EQ(m.cols(), 4);
  for (int64_t j = 0; j < 4; ++j) {
    for (int64_t i = 0; i < 3; ++i) EXPECT_EQ(m(i, j), 0.0);
  }
}

TEST(MatrixTest, ColumnMajorLayout) {
  Matrix m(2, 3);
  m(0, 0) = 1;
  m(1, 0) = 2;
  m(0, 1) = 3;
  const double* data = m.data();
  EXPECT_EQ(data[0], 1);
  EXPECT_EQ(data[1], 2);
  EXPECT_EQ(data[2], 3);
  EXPECT_EQ(m.ColData(1), data + 2);
}

TEST(MatrixTest, Identity) {
  const Matrix eye = Matrix::Identity(3);
  for (int64_t i = 0; i < 3; ++i) {
    for (int64_t j = 0; j < 3; ++j) {
      EXPECT_EQ(eye(i, j), i == j ? 1.0 : 0.0);
    }
  }
}

TEST(MatrixTest, FromColumnsAndCol) {
  const Matrix m = Matrix::FromColumns({{1, 2}, {3, 4}, {5, 6}});
  EXPECT_EQ(m.rows(), 2);
  EXPECT_EQ(m.cols(), 3);
  EXPECT_EQ(m(0, 2), 5);
  EXPECT_EQ(m.Col(1), (Vector{3, 4}));
  EXPECT_TRUE(Matrix::FromColumns({}).empty());
}

TEST(MatrixTest, SetCol) {
  Matrix m(2, 2);
  m.SetCol(1, Vector{7, 8});
  EXPECT_EQ(m(0, 1), 7);
  EXPECT_EQ(m(1, 1), 8);
}

TEST(MatrixTest, GatherColsWithDuplicates) {
  const Matrix m = Matrix::FromColumns({{1, 1}, {2, 2}, {3, 3}});
  const Matrix g = m.GatherCols({2, 0, 2});
  EXPECT_EQ(g.cols(), 3);
  EXPECT_EQ(g(0, 0), 3);
  EXPECT_EQ(g(0, 1), 1);
  EXPECT_EQ(g(0, 2), 3);
}

TEST(MatrixTest, ColRangeAndRowRange) {
  Matrix m(3, 4);
  for (int64_t j = 0; j < 4; ++j) {
    for (int64_t i = 0; i < 3; ++i) m(i, j) = static_cast<double>(10 * i + j);
  }
  const Matrix cols = m.ColRange(1, 3);
  EXPECT_EQ(cols.cols(), 2);
  EXPECT_EQ(cols(2, 0), 21);
  const Matrix rows = m.RowRange(1, 2);
  EXPECT_EQ(rows.rows(), 1);
  EXPECT_EQ(rows(0, 3), 13);
  EXPECT_EQ(m.ColRange(2, 2).cols(), 0);
}

TEST(MatrixTest, TransposedRoundTrip) {
  Rng rng(5);
  Matrix m(7, 13);
  for (int64_t j = 0; j < m.cols(); ++j) {
    for (int64_t i = 0; i < m.rows(); ++i) m(i, j) = rng.Gaussian();
  }
  const Matrix t = m.Transposed();
  EXPECT_EQ(t.rows(), 13);
  EXPECT_EQ(t.cols(), 7);
  for (int64_t j = 0; j < m.cols(); ++j) {
    for (int64_t i = 0; i < m.rows(); ++i) EXPECT_EQ(t(j, i), m(i, j));
  }
  EXPECT_TRUE(AllClose(t.Transposed(), m, 0.0));
}

TEST(MatrixTest, NormalizeColumns) {
  Matrix m = Matrix::FromColumns({{3, 4}, {0, 0}, {1, 0}});
  const int64_t normalized = m.NormalizeColumns();
  EXPECT_EQ(normalized, 2);  // the zero column is left alone
  EXPECT_NEAR(m(0, 0), 0.6, 1e-12);
  EXPECT_NEAR(m(1, 0), 0.8, 1e-12);
  EXPECT_EQ(m(0, 1), 0.0);
  EXPECT_NEAR(m(0, 2), 1.0, 1e-12);
}

TEST(MatrixTest, NormsAndFill) {
  Matrix m = Matrix::FromColumns({{3, 0}, {0, -4}});
  EXPECT_NEAR(m.FrobeniusNorm(), 5.0, 1e-12);
  EXPECT_EQ(m.MaxAbs(), 4.0);
  m.Fill(2.0);
  EXPECT_EQ(m.FrobeniusNorm(), 4.0);
}

TEST(MatrixTest, Arithmetic) {
  const Matrix a = Matrix::FromColumns({{1, 2}, {3, 4}});
  const Matrix b = Matrix::FromColumns({{10, 20}, {30, 40}});
  const Matrix sum = a + b;
  EXPECT_EQ(sum(1, 1), 44);
  const Matrix diff = b - a;
  EXPECT_EQ(diff(0, 0), 9);
  const Matrix scaled = 2.0 * a;
  EXPECT_EQ(scaled(1, 0), 4);
  EXPECT_TRUE(AllClose(a * 2.0, scaled, 0.0));
}

TEST(MatrixTest, AllCloseShapesAndTolerance) {
  const Matrix a = Matrix::FromColumns({{1, 2}});
  const Matrix b = Matrix::FromColumns({{1.0005, 2}});
  EXPECT_TRUE(AllClose(a, b, 1e-3));
  EXPECT_FALSE(AllClose(a, b, 1e-5));
  EXPECT_FALSE(AllClose(a, Matrix(2, 2), 1.0));
}

TEST(MatrixTest, ToStringTruncates) {
  Matrix m(20, 20);
  const std::string s = m.ToString(2, 2);
  EXPECT_NE(s.find("20x20"), std::string::npos);
  EXPECT_NE(s.find("..."), std::string::npos);
}

TEST(MatrixDeathTest, OutOfRangeAccessDiesInDebug) {
#ifndef NDEBUG
  Matrix m(2, 2);
  EXPECT_DEATH(m(2, 0), "FEDSC_CHECK");
#else
  GTEST_SKIP() << "bounds checks compiled out in release";
#endif
}

}  // namespace
}  // namespace fedsc
