#include <algorithm>
#include <cmath>
#include <numeric>

#include <gtest/gtest.h>

#include "common/metrics.h"
#include "common/rng.h"
#include "metrics/clustering_metrics.h"
#include "metrics/connectivity.h"
#include "metrics/hungarian.h"
#include "metrics/subspace_preserving.h"

namespace fedsc {
namespace {

// Brute-force optimal assignment for small square cost matrices.
double BruteForceAssignment(const Matrix& cost) {
  std::vector<int64_t> perm(static_cast<size_t>(cost.cols()));
  std::iota(perm.begin(), perm.end(), 0);
  double best = std::numeric_limits<double>::infinity();
  do {
    double total = 0.0;
    for (int64_t i = 0; i < cost.rows(); ++i) {
      total += cost(i, perm[static_cast<size_t>(i)]);
    }
    best = std::min(best, total);
  } while (std::next_permutation(perm.begin(), perm.end()));
  return best;
}

TEST(HungarianTest, KnownThreeByThree) {
  Matrix cost(3, 3);
  // Classic example: optimal = 5 (0->1, 1->0, 2->2).
  const double values[3][3] = {{4, 1, 3}, {2, 0, 5}, {3, 2, 2}};
  for (int i = 0; i < 3; ++i) {
    for (int j = 0; j < 3; ++j) cost(i, j) = values[i][j];
  }
  std::vector<int64_t> assignment;
  EXPECT_DOUBLE_EQ(SolveAssignment(cost, &assignment), 5.0);
  EXPECT_EQ(assignment, (std::vector<int64_t>{1, 0, 2}));
}

class HungarianRandomTest : public ::testing::TestWithParam<int64_t> {};

TEST_P(HungarianRandomTest, MatchesBruteForce) {
  const int64_t n = GetParam();
  Rng rng(500 + n);
  for (int trial = 0; trial < 20; ++trial) {
    Matrix cost(n, n);
    for (int64_t j = 0; j < n; ++j) {
      for (int64_t i = 0; i < n; ++i) cost(i, j) = rng.Uniform(-5.0, 5.0);
    }
    std::vector<int64_t> assignment;
    const double solved = SolveAssignment(cost, &assignment);
    EXPECT_NEAR(solved, BruteForceAssignment(cost), 1e-9);
    // Assignment is a permutation.
    std::vector<int64_t> sorted = assignment;
    std::sort(sorted.begin(), sorted.end());
    for (int64_t i = 0; i < n; ++i) EXPECT_EQ(sorted[static_cast<size_t>(i)], i);
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, HungarianRandomTest,
                         ::testing::Values<int64_t>(1, 2, 3, 5, 6));

TEST(HungarianTest, RectangularRowsLessThanCols) {
  Matrix cost(2, 4);
  const double values[2][4] = {{9, 1, 9, 9}, {9, 9, 9, 2}};
  for (int i = 0; i < 2; ++i) {
    for (int j = 0; j < 4; ++j) cost(i, j) = values[i][j];
  }
  std::vector<int64_t> assignment;
  EXPECT_DOUBLE_EQ(SolveAssignment(cost, &assignment), 3.0);
  EXPECT_EQ(assignment, (std::vector<int64_t>{1, 3}));
}

TEST(HungarianTest, MaxAssignment) {
  Matrix weight(2, 2);
  weight(0, 0) = 1;
  weight(0, 1) = 5;
  weight(1, 0) = 2;
  weight(1, 1) = 1;
  std::vector<int64_t> assignment;
  EXPECT_DOUBLE_EQ(SolveMaxAssignment(weight, &assignment), 7.0);
  EXPECT_EQ(assignment, (std::vector<int64_t>{1, 0}));
}

TEST(AccuracyTest, PerfectAndPermuted) {
  const std::vector<int64_t> truth{0, 0, 1, 1, 2, 2};
  EXPECT_DOUBLE_EQ(ClusteringAccuracy(truth, truth), 100.0);
  // Same clustering with relabeled cluster ids.
  const std::vector<int64_t> permuted{2, 2, 0, 0, 1, 1};
  EXPECT_DOUBLE_EQ(ClusteringAccuracy(truth, permuted), 100.0);
}

TEST(AccuracyTest, KnownPartialAgreement) {
  const std::vector<int64_t> truth{0, 0, 0, 1, 1, 1};
  const std::vector<int64_t> pred{0, 0, 1, 1, 1, 1};
  // Best alignment matches 5 of 6.
  EXPECT_NEAR(ClusteringAccuracy(truth, pred), 100.0 * 5 / 6, 1e-9);
}

TEST(AccuracyTest, DifferentClusterCounts) {
  const std::vector<int64_t> truth{0, 0, 1, 1};
  const std::vector<int64_t> pred{0, 1, 2, 3};  // over-segmented
  EXPECT_NEAR(ClusteringAccuracy(truth, pred), 50.0, 1e-9);
  const std::vector<int64_t> merged{0, 0, 0, 0};  // under-segmented
  EXPECT_NEAR(ClusteringAccuracy(truth, merged), 50.0, 1e-9);
}

TEST(NmiTest, PerfectIsHundredInvariantToRelabeling) {
  const std::vector<int64_t> truth{0, 0, 1, 1, 2, 2};
  EXPECT_NEAR(NormalizedMutualInformation(truth, truth), 100.0, 1e-9);
  const std::vector<int64_t> permuted{1, 1, 2, 2, 0, 0};
  EXPECT_NEAR(NormalizedMutualInformation(truth, permuted), 100.0, 1e-9);
}

TEST(NmiTest, IndependentLabelingsNearZero) {
  // Prediction splits orthogonally to truth.
  const std::vector<int64_t> truth{0, 0, 1, 1};
  const std::vector<int64_t> pred{0, 1, 0, 1};
  EXPECT_NEAR(NormalizedMutualInformation(truth, pred), 0.0, 1e-9);
}

TEST(NmiTest, ConstantLabelings) {
  const std::vector<int64_t> constant{0, 0, 0};
  EXPECT_DOUBLE_EQ(NormalizedMutualInformation(constant, constant), 100.0);
  const std::vector<int64_t> split{0, 1, 0};
  // One side constant: MI = 0, denominator > 0.
  EXPECT_NEAR(NormalizedMutualInformation(constant, split), 0.0, 1e-9);
}

TEST(NmiTest, BetweenZeroAndHundredOnRandomLabelings) {
  Rng rng(9);
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<int64_t> a(50), b(50);
    for (auto& v : a) v = rng.UniformInt(4);
    for (auto& v : b) v = rng.UniformInt(6);
    const double nmi = NormalizedMutualInformation(a, b);
    EXPECT_GE(nmi, 0.0);
    EXPECT_LE(nmi, 100.0 + 1e-9);
  }
}

TEST(ContingencyTest, Counts) {
  const Matrix table = ContingencyTable({0, 0, 1}, {1, 1, 0});
  EXPECT_EQ(table.rows(), 2);
  EXPECT_EQ(table.cols(), 2);
  EXPECT_EQ(table(0, 1), 2.0);
  EXPECT_EQ(table(1, 0), 1.0);
  EXPECT_EQ(table(0, 0), 0.0);
}

TEST(ConnectivityTest, ConnectedClusterPositiveDisconnectedZero) {
  // Cluster 0: a connected triangle. Cluster 1: two pairs with no link
  // between them (disconnected within the cluster).
  Matrix w(7, 7);
  auto connect = [&w](int64_t a, int64_t b) {
    w(a, b) = 1.0;
    w(b, a) = 1.0;
  };
  connect(0, 1);
  connect(1, 2);
  connect(0, 2);
  connect(3, 4);
  connect(5, 6);
  const std::vector<int64_t> truth{0, 0, 0, 1, 1, 1, 1};
  auto conn = GraphConnectivity(w, truth);
  ASSERT_TRUE(conn.ok());
  EXPECT_GT(conn->per_cluster[0], 0.5);
  EXPECT_NEAR(conn->per_cluster[1], 0.0, 1e-9);
  EXPECT_NEAR(conn->min_lambda2, 0.0, 1e-9);
  EXPECT_NEAR(conn->mean_lambda2,
              conn->per_cluster[0] / 2.0, 1e-9);
}

TEST(ConnectivityTest, SparseMatchesDense) {
  Rng rng(11);
  Matrix w(10, 10);
  for (int64_t i = 0; i < 10; ++i) {
    for (int64_t j = i + 1; j < 10; ++j) {
      if (rng.Uniform() < 0.4) {
        const double v = rng.Uniform();
        w(i, j) = v;
        w(j, i) = v;
      }
    }
  }
  std::vector<int64_t> truth(10);
  for (size_t i = 0; i < 10; ++i) truth[i] = static_cast<int64_t>(i % 2);
  auto dense = GraphConnectivity(w, truth);
  auto sparse = GraphConnectivity(SparsifyDense(w), truth);
  ASSERT_TRUE(dense.ok());
  ASSERT_TRUE(sparse.ok());
  for (size_t c = 0; c < 2; ++c) {
    EXPECT_NEAR(dense->per_cluster[c], sparse->per_cluster[c], 1e-9);
  }
}

TEST(ConnectivityTest, SingletonClusterContributesZero) {
  Matrix w(3, 3);
  w(0, 1) = 1.0;
  w(1, 0) = 1.0;
  auto conn = GraphConnectivity(w, {0, 0, 1});
  ASSERT_TRUE(conn.ok());
  EXPECT_EQ(conn->per_cluster[1], 0.0);
}

TEST(ConnectivityTest, SizeMismatchRejected) {
  EXPECT_FALSE(GraphConnectivity(Matrix(3, 3), {0, 1}).ok());
}

TEST(SubspacePreservingTest, PureAndMixedGraphs) {
  // 4 points, clusters {0,1} and {2,3}.
  const std::vector<int64_t> truth{0, 0, 1, 1};
  const SparseMatrix clean = SparseMatrix::FromTriplets(
      4, 4, {{0, 1, 1.0}, {1, 0, 1.0}, {2, 3, 2.0}, {3, 2, 2.0}});
  auto e_clean = SubspacePreservingError(clean, truth);
  ASSERT_TRUE(e_clean.ok());
  EXPECT_DOUBLE_EQ(*e_clean, 0.0);
  auto sep_clean = HoldsSelfExpressiveness(clean, truth);
  ASSERT_TRUE(sep_clean.ok());
  EXPECT_TRUE(*sep_clean);

  // Add one cross edge carrying 1/4 of the total mass (|weights| sum: 6+2).
  const SparseMatrix mixed = SparseMatrix::FromTriplets(
      4, 4, {{0, 1, 1.0}, {1, 0, 1.0}, {2, 3, 2.0}, {3, 2, 2.0},
             {0, 2, -1.0}, {2, 0, -1.0}});
  auto e_mixed = SubspacePreservingError(mixed, truth);
  ASSERT_TRUE(e_mixed.ok());
  EXPECT_NEAR(*e_mixed, 100.0 * 2.0 / 8.0, 1e-12);
  auto sep_mixed = HoldsSelfExpressiveness(mixed, truth);
  ASSERT_TRUE(sep_mixed.ok());
  EXPECT_FALSE(*sep_mixed);
}

TEST(SubspacePreservingTest, EmptyGraphAndValidation) {
  const SparseMatrix empty = SparseMatrix::FromTriplets(3, 3, {});
  auto e = SubspacePreservingError(empty, {0, 1, 2});
  ASSERT_TRUE(e.ok());
  EXPECT_DOUBLE_EQ(*e, 0.0);
  EXPECT_FALSE(SubspacePreservingError(empty, {0, 1}).ok());
  EXPECT_FALSE(HoldsSelfExpressiveness(empty, {0}).ok());
}

TEST(HistogramPercentileTest, EstimatesAreOrderedBoundedAndDeterministic) {
  Histogram& histogram =
      MetricsRegistry::Global().GetHistogram("test.percentile_histogram");
  ResetMetrics();
  EnableMetrics(true);
  // 1..1000: the log2-bucket estimator cannot be exact, but its p50/p90/p99
  // must be ordered, inside [min, max], and near the true quantile (within
  // one power-of-two bucket of it).
  for (int64_t v = 1; v <= 1000; ++v) histogram.Record(v);
  EnableMetrics(false);

  const HistogramSnapshot h = histogram.Snapshot();
  const double p50 = h.Percentile(0.50);
  const double p90 = h.Percentile(0.90);
  const double p99 = h.Percentile(0.99);
  EXPECT_LE(h.Percentile(0.0), p50);
  EXPECT_LE(p50, p90);
  EXPECT_LE(p90, p99);
  EXPECT_LE(p99, h.Percentile(1.0));
  EXPECT_EQ(h.Percentile(0.0), 1);
  EXPECT_EQ(h.Percentile(1.0), 1000);
  EXPECT_GE(p50, 256);   // true p50 ~ 500, bucket [512, 1023] or [256, 511]
  EXPECT_LE(p50, 1000);
  EXPECT_GE(p99, 512);   // true p99 ~ 990
  // Same data, same estimate: determinism across repeated snapshots.
  EXPECT_EQ(p90, histogram.Snapshot().Percentile(0.90));
  ResetMetrics();
}

TEST(HistogramPercentileTest, EdgeCases) {
  Histogram& histogram =
      MetricsRegistry::Global().GetHistogram("test.percentile_edge");
  ResetMetrics();

  // Empty histogram: every percentile is 0.
  EXPECT_EQ(histogram.Snapshot().Percentile(0.5), 0.0);

  // Single value: every percentile is that value (clamped to [min, max]).
  EnableMetrics(true);
  histogram.Record(42);
  EnableMetrics(false);
  const HistogramSnapshot single = histogram.Snapshot();
  EXPECT_EQ(single.Percentile(0.0), 42);
  EXPECT_EQ(single.Percentile(0.5), 42);
  EXPECT_EQ(single.Percentile(1.0), 42);

  // Two identical values still collapse to the value itself.
  EnableMetrics(true);
  histogram.Record(42);
  EnableMetrics(false);
  EXPECT_EQ(histogram.Snapshot().Percentile(0.99), 42);
  ResetMetrics();
}

}  // namespace
}  // namespace fedsc
