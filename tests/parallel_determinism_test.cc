// Bit-exactness of every threaded kernel: for num_threads in {1, 2, 8} the
// outputs must be *identical at the bit level* to the serial pass, not just
// close. This is the determinism contract from DESIGN.md — threaded kernels
// partition their output index space into fixed contiguous ranges and run
// the same serial subkernel per range, so no floating-point operation is
// reordered and no tolerance is needed here.

#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/fedsc.h"
#include "data/synthetic.h"
#include "fed/partition.h"
#include "linalg/blas.h"
#include "linalg/eig.h"
#include "linalg/qr.h"
#include "linalg/svd.h"
#include "sc/ssc_omp.h"

namespace fedsc {
namespace {

const int kThreadCounts[] = {2, 8};

Matrix RandomMatrix(int64_t rows, int64_t cols, Rng* rng) {
  Matrix m(rows, cols);
  for (int64_t j = 0; j < cols; ++j) {
    for (int64_t i = 0; i < rows; ++i) m(i, j) = rng->Gaussian();
  }
  return m;
}

void ExpectBitIdentical(const Matrix& a, const Matrix& b, const char* what) {
  ASSERT_EQ(a.rows(), b.rows()) << what;
  ASSERT_EQ(a.cols(), b.cols()) << what;
  for (int64_t j = 0; j < a.cols(); ++j) {
    for (int64_t i = 0; i < a.rows(); ++i) {
      ASSERT_EQ(a(i, j), b(i, j))
          << what << " differs at (" << i << ", " << j << ")";
    }
  }
}

TEST(GemmDeterminismTest, AllTransposeCombosMatchSerialBitForBit) {
  // 48^3 is above both the thread-throttle floor and kBlockedGemmCutoff, so
  // the default path is the blocked packed engine with workers engaged.
  constexpr int64_t n = 48;
  Rng rng(11);
  const Matrix a = RandomMatrix(n, n, &rng);
  const Matrix b = RandomMatrix(n, n, &rng);
  const Matrix c0 = RandomMatrix(n, n, &rng);  // exercises beta != 0

  const Trans kinds[] = {Trans::kNo, Trans::kTrans};
  for (Trans ta : kinds) {
    for (Trans tb : kinds) {
      Matrix serial = c0;
      Gemm(ta, tb, 1.25, a, b, 0.5, &serial, 1);
      for (int threads : kThreadCounts) {
        Matrix threaded = c0;
        Gemm(ta, tb, 1.25, a, b, 0.5, &threaded, threads);
        ExpectBitIdentical(serial, threaded, "Gemm");
      }
    }
  }
}

TEST(GemmDeterminismTest, BlockedEngineOddShapesMatchSerialBitForBit) {
  // Shapes chosen so every blocking loop runs a full block plus a ragged
  // tail: k = 257 spans two kc blocks, m = 130 spans mc blocks with a
  // partial micro-row, n = 100 leaves a partial NR micro-column. The jr
  // micro-blocks are the parallel axis; their results must be independent
  // of how ParallelForRanges partitions them.
  constexpr int64_t m = 130, k = 257, n = 100;
  Rng rng(15);
  const Matrix c0 = RandomMatrix(m, n, &rng);

  const Trans kinds[] = {Trans::kNo, Trans::kTrans};
  for (Trans ta : kinds) {
    for (Trans tb : kinds) {
      const Matrix a = ta == Trans::kNo ? RandomMatrix(m, k, &rng)
                                        : RandomMatrix(k, m, &rng);
      const Matrix b = tb == Trans::kNo ? RandomMatrix(k, n, &rng)
                                        : RandomMatrix(n, k, &rng);
      GemmOptions options;
      options.kernel = GemmKernel::kBlocked;
      options.num_threads = 1;
      Matrix serial = c0;
      Gemm(ta, tb, 1.25, a, b, 0.5, &serial, options);
      for (int threads : kThreadCounts) {
        options.num_threads = threads;
        Matrix threaded = c0;
        Gemm(ta, tb, 1.25, a, b, 0.5, &threaded, options);
        ExpectBitIdentical(serial, threaded, "blocked Gemm");
      }
    }
  }
}

TEST(GemmDeterminismTest, PanelPinMatchesSerialBitForBit) {
  // The kPanel escape hatch keeps the legacy threaded column-panel path;
  // its determinism contract must survive the dispatcher rewrite.
  constexpr int64_t n = 48;
  Rng rng(16);
  const Matrix a = RandomMatrix(n, n, &rng);
  const Matrix b = RandomMatrix(n, n, &rng);
  const Matrix c0 = RandomMatrix(n, n, &rng);

  const Trans kinds[] = {Trans::kNo, Trans::kTrans};
  for (Trans ta : kinds) {
    for (Trans tb : kinds) {
      GemmOptions options;
      options.kernel = GemmKernel::kPanel;
      options.num_threads = 1;
      Matrix serial = c0;
      Gemm(ta, tb, 1.25, a, b, 0.5, &serial, options);
      for (int threads : kThreadCounts) {
        options.num_threads = threads;
        Matrix threaded = c0;
        Gemm(ta, tb, 1.25, a, b, 0.5, &threaded, options);
        ExpectBitIdentical(serial, threaded, "panel Gemm");
      }
    }
  }
}

TEST(SyrkDeterminismTest, BothOrientationsAndKernelsMatchSerialBitForBit) {
  // 80 x 150 input: both orientations clear the blocked cutoff, and the
  // panel pin exercises the threaded SyrkPanelLower + mirror path. The
  // mirror is part of the output, so bit-identity covers it too.
  Rng rng(17);
  const Matrix x = RandomMatrix(80, 150, &rng);

  for (Trans trans : {Trans::kTrans, Trans::kNo}) {
    const int64_t nn = trans == Trans::kTrans ? x.cols() : x.rows();
    const Matrix r = RandomMatrix(nn, nn, &rng);
    Matrix c0(nn, nn);
    for (int64_t j = 0; j < nn; ++j) {
      for (int64_t i = 0; i < nn; ++i) c0(i, j) = r(i, j) + r(j, i);
    }
    for (GemmKernel kernel : {GemmKernel::kBlocked, GemmKernel::kPanel}) {
      GemmOptions options;
      options.kernel = kernel;
      options.num_threads = 1;
      Matrix serial = c0;
      Syrk(trans, 1.25, x, 0.5, &serial, options);
      for (int threads : kThreadCounts) {
        options.num_threads = threads;
        Matrix threaded = c0;
        Syrk(trans, 1.25, x, 0.5, &threaded, options);
        ExpectBitIdentical(serial, threaded, "Syrk");
      }
    }
  }
}

TEST(GemvDeterminismTest, BothOrientationsMatchSerialBitForBit) {
  constexpr int64_t n = 200;  // 200*200 engages the threaded path
  Rng rng(12);
  const Matrix a = RandomMatrix(n, n, &rng);
  Vector x(static_cast<size_t>(n));
  Vector y0(static_cast<size_t>(n));
  for (auto& v : x) v = rng.Gaussian();
  for (auto& v : y0) v = rng.Gaussian();

  for (Trans trans : {Trans::kNo, Trans::kTrans}) {
    Vector serial = y0;
    Gemv(trans, 0.75, a, x.data(), 1.5, serial.data(), 1);
    for (int threads : kThreadCounts) {
      Vector threaded = y0;
      Gemv(trans, 0.75, a, x.data(), 1.5, threaded.data(), threads);
      for (int64_t i = 0; i < n; ++i) {
        ASSERT_EQ(serial[static_cast<size_t>(i)],
                  threaded[static_cast<size_t>(i)])
            << "Gemv differs at " << i << " with " << threads << " threads";
      }
    }
  }
}

TEST(SvdDeterminismTest, LargeInputMatchesSerialBitForBit) {
  // 160 x 110 is above the round-robin cutoff: the parallel tournament
  // sweep runs for every thread count, including 1.
  Rng rng(13);
  const Matrix a = RandomMatrix(160, 110, &rng);

  SvdOptions serial_options;
  serial_options.num_threads = 1;
  auto serial = JacobiSvd(a, serial_options);
  ASSERT_TRUE(serial.ok()) << serial.status().ToString();

  for (int threads : kThreadCounts) {
    SvdOptions options;
    options.num_threads = threads;
    auto threaded = JacobiSvd(a, options);
    ASSERT_TRUE(threaded.ok()) << threaded.status().ToString();
    ASSERT_EQ(serial->s, threaded->s) << threads << " threads";
    ExpectBitIdentical(serial->u, threaded->u, "SVD U");
    ExpectBitIdentical(serial->v, threaded->v, "SVD V");
  }
}

TEST(SvdDeterminismTest, SmallInputIsThreadCountInvariantToo) {
  // Below the cutoff the sweep is cyclic and serial regardless of
  // num_threads; the knob must still be a no-op on the bits.
  Rng rng(14);
  const Matrix a = RandomMatrix(40, 24, &rng);

  SvdOptions serial_options;
  auto serial = JacobiSvd(a, serial_options);
  ASSERT_TRUE(serial.ok());

  for (int threads : kThreadCounts) {
    SvdOptions options;
    options.num_threads = threads;
    auto threaded = JacobiSvd(a, options);
    ASSERT_TRUE(threaded.ok());
    ASSERT_EQ(serial->s, threaded->s);
    ExpectBitIdentical(serial->u, threaded->u, "SVD U");
    ExpectBitIdentical(serial->v, threaded->v, "SVD V");
  }
}

TEST(QrDeterminismTest, BlockedEngineMatchesSerialBitForBit) {
  // 300 x 70 crosses the blocked cutoff (kAuto engages the compact-WY
  // engine) and spans two panels plus a ragged tail; the trailing-update
  // and Q-accumulation GEMMs are the parallel axis.
  Rng rng(18);
  const Matrix a = RandomMatrix(300, 70, &rng);

  QrOptions serial_options;
  serial_options.num_threads = 1;
  auto serial = HouseholderQr(a, serial_options);
  ASSERT_TRUE(serial.ok()) << serial.status().ToString();

  for (int threads : kThreadCounts) {
    QrOptions options;
    options.num_threads = threads;
    auto threaded = HouseholderQr(a, options);
    ASSERT_TRUE(threaded.ok()) << threaded.status().ToString();
    ExpectBitIdentical(serial->q, threaded->q, "QR Q");
    ExpectBitIdentical(serial->r, threaded->r, "QR R");
  }
}

TEST(SvdDeterminismTest, PreconditionedPathMatchesSerialBitForBit) {
  // 600 x 40: tall enough that kAuto QR-preconditions (aspect 15, work
  // 24000), with the blocked QR and the U-recovery GEMM threaded inside.
  Rng rng(19);
  const Matrix a = RandomMatrix(600, 40, &rng);

  SvdOptions serial_options;
  serial_options.num_threads = 1;
  auto serial = JacobiSvd(a, serial_options);
  ASSERT_TRUE(serial.ok()) << serial.status().ToString();

  for (int threads : kThreadCounts) {
    SvdOptions options;
    options.num_threads = threads;
    auto threaded = JacobiSvd(a, options);
    ASSERT_TRUE(threaded.ok()) << threaded.status().ToString();
    ASSERT_EQ(serial->s, threaded->s) << threads << " threads";
    ExpectBitIdentical(serial->u, threaded->u, "precond SVD U");
    ExpectBitIdentical(serial->v, threaded->v, "precond SVD V");
  }
}

TEST(EigDeterminismTest, BlockedEngineMatchesSerialBitForBit) {
  // 150 >= kBlockedEigCutoff: kAuto runs the blocked tridiagonalization
  // with threaded trailing matvecs, rank-2b GEMM updates, and compact-WY
  // Q accumulation.
  constexpr int64_t n = 150;
  Rng rng(20);
  Matrix a = RandomMatrix(n, n, &rng);
  a += a.Transposed();

  EigOptions serial_options;
  serial_options.num_threads = 1;
  auto serial = SymmetricEigen(a, serial_options);
  ASSERT_TRUE(serial.ok()) << serial.status().ToString();

  for (int threads : kThreadCounts) {
    EigOptions options;
    options.num_threads = threads;
    auto threaded = SymmetricEigen(a, options);
    ASSERT_TRUE(threaded.ok()) << threaded.status().ToString();
    ASSERT_EQ(serial->values, threaded->values) << threads << " threads";
    ExpectBitIdentical(serial->vectors, threaded->vectors, "eig vectors");

    auto values_only = SymmetricEigenvalues(a, options);
    ASSERT_TRUE(values_only.ok());
    ASSERT_EQ(serial->values, *values_only) << threads << " threads";
  }
}

TEST(SscOmpDeterminismTest, CoefficientMatrixMatchesSerialExactly) {
  SyntheticOptions synth;
  synth.ambient_dim = 24;
  synth.subspace_dim = 3;
  synth.num_subspaces = 3;
  synth.points_per_subspace = 40;
  synth.seed = 21;
  auto data = GenerateUnionOfSubspaces(synth);
  ASSERT_TRUE(data.ok());
  Matrix x = data->points;
  x.NormalizeColumns();

  SscOmpOptions serial_options;
  serial_options.num_threads = 1;
  auto serial = SscOmpSelfExpression(x, serial_options);
  ASSERT_TRUE(serial.ok()) << serial.status().ToString();

  for (int threads : kThreadCounts) {
    SscOmpOptions options;
    options.num_threads = threads;
    auto threaded = SscOmpSelfExpression(x, options);
    ASSERT_TRUE(threaded.ok()) << threaded.status().ToString();
    // The CSR arrays — structure AND values — must match exactly: the
    // threaded builder concatenates per-chunk triplet lists in chunk order
    // to reproduce the serial triplet stream.
    ASSERT_EQ(serial->row_ptr(), threaded->row_ptr()) << threads;
    ASSERT_EQ(serial->col_idx(), threaded->col_idx()) << threads;
    ASSERT_EQ(serial->values(), threaded->values()) << threads;
  }
}

TEST(FedScDeterminismTest, FullRunMatchesSerialForEveryThreadCount) {
  SyntheticOptions synth;
  synth.ambient_dim = 24;
  synth.subspace_dim = 3;
  synth.num_subspaces = 4;
  synth.points_per_subspace = 30;
  synth.seed = 31;
  auto data = GenerateUnionOfSubspaces(synth);
  ASSERT_TRUE(data.ok());
  PartitionOptions partition;
  partition.num_devices = 6;
  partition.clusters_per_device = 2;
  partition.seed = 31 ^ 0xABCDEF;
  auto fed = PartitionAcrossDevices(*data, partition);
  ASSERT_TRUE(fed.ok());

  FedScOptions serial_options;
  serial_options.num_threads = 1;
  auto serial = RunFedSc(*fed, synth.num_subspaces, serial_options);
  ASSERT_TRUE(serial.ok()) << serial.status().ToString();

  for (int threads : kThreadCounts) {
    FedScOptions options;
    options.num_threads = threads;
    auto threaded = RunFedSc(*fed, synth.num_subspaces, options);
    ASSERT_TRUE(threaded.ok()) << threaded.status().ToString();

    EXPECT_EQ(serial->global_labels, threaded->global_labels) << threads;
    EXPECT_EQ(serial->device_labels, threaded->device_labels) << threads;
    EXPECT_EQ(serial->local_cluster_counts, threaded->local_cluster_counts)
        << threads;
    EXPECT_EQ(serial->total_samples, threaded->total_samples) << threads;
    EXPECT_EQ(serial->sample_labels, threaded->sample_labels) << threads;
    ExpectBitIdentical(serial->samples, threaded->samples, "pooled samples");
  }
}

}  // namespace
}  // namespace fedsc
