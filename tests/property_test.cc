// Cross-cutting property tests: invariances and equivariances that pin down
// the algorithms' mathematics (rotation/scale invariance, permutation
// equivariance, metric symmetry).

#include <algorithm>
#include <cmath>
#include <numeric>

#include <gtest/gtest.h>

#include "core/fedsc.h"
#include "data/synthetic.h"
#include "fed/partition.h"
#include "linalg/blas.h"
#include "linalg/eig.h"
#include "linalg/svd.h"
#include "metrics/clustering_metrics.h"
#include "metrics/hungarian.h"
#include "sc/pipeline.h"

namespace fedsc {
namespace {

Matrix RandomRotation(int64_t n, Rng* rng) {
  return RandomOrthonormalBasis(n, n, rng);
}

TEST(PropertyTest, SvdSingularValuesAreRotationInvariant) {
  Rng rng(1);
  Matrix a(10, 6);
  for (int64_t j = 0; j < 6; ++j) {
    for (int64_t i = 0; i < 10; ++i) a(i, j) = rng.Gaussian();
  }
  const Matrix q = RandomRotation(10, &rng);
  auto plain = JacobiSvd(a);
  auto rotated = JacobiSvd(MatMul(q, a));
  ASSERT_TRUE(plain.ok());
  ASSERT_TRUE(rotated.ok());
  for (size_t i = 0; i < plain->s.size(); ++i) {
    EXPECT_NEAR(plain->s[i], rotated->s[i], 1e-10);
  }
}

TEST(PropertyTest, SscCoefficientsAreRotationInvariant) {
  // SSC depends on the data only through the Gram matrix X^T X, which an
  // orthogonal transform leaves untouched.
  SyntheticOptions synth;
  synth.ambient_dim = 18;
  synth.subspace_dim = 3;
  synth.num_subspaces = 3;
  synth.points_per_subspace = 20;
  synth.seed = 3;
  auto data = GenerateUnionOfSubspaces(synth);
  ASSERT_TRUE(data.ok());
  Rng rng(4);
  const Matrix q = RandomRotation(18, &rng);

  auto c_plain = SscSelfExpression(data->points);
  auto c_rotated = SscSelfExpression(MatMul(q, data->points));
  ASSERT_TRUE(c_plain.ok());
  ASSERT_TRUE(c_rotated.ok());
  EXPECT_TRUE(AllClose(c_plain->ToDense(), c_rotated->ToDense(), 1e-8));
}

TEST(PropertyTest, FedScIsRotationInvariant) {
  SyntheticOptions synth;
  synth.ambient_dim = 16;
  synth.subspace_dim = 3;
  synth.num_subspaces = 4;
  synth.points_per_subspace = 60;
  synth.seed = 5;
  auto data = GenerateUnionOfSubspaces(synth);
  ASSERT_TRUE(data.ok());
  Rng rng(6);
  const Matrix q = RandomRotation(16, &rng);
  Dataset rotated = *data;
  rotated.points = MatMul(q, data->points);

  PartitionOptions partition;
  partition.num_devices = 10;
  partition.clusters_per_device = 2;
  partition.seed = 7;
  auto fed_plain = PartitionAcrossDevices(*data, partition);
  auto fed_rotated = PartitionAcrossDevices(rotated, partition);
  ASSERT_TRUE(fed_plain.ok());
  ASSERT_TRUE(fed_rotated.ok());

  FedScOptions options;
  options.seed = 99;
  auto a = RunFedSc(*fed_plain, 4, options);
  auto b = RunFedSc(*fed_rotated, 4, options);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  // The algorithm sees only inner products, which the rotation preserves up
  // to floating-point noise, so quality must match (labels themselves may
  // differ on rounding-level ties).
  const double acc_plain = ClusteringAccuracy(data->labels, a->global_labels);
  const double acc_rotated =
      ClusteringAccuracy(data->labels, b->global_labels);
  EXPECT_NEAR(acc_plain, acc_rotated, 4.0);
  EXPECT_GE(acc_plain, 94.0);
  EXPECT_GE(acc_rotated, 94.0);
}

TEST(PropertyTest, PipelineIsScaleInvariant) {
  // Column normalization makes the whole pipeline invariant to a global
  // rescaling of the data.
  SyntheticOptions synth;
  synth.ambient_dim = 16;
  synth.subspace_dim = 3;
  synth.num_subspaces = 3;
  synth.points_per_subspace = 25;
  synth.seed = 8;
  synth.normalize = false;
  auto data = GenerateUnionOfSubspaces(synth);
  ASSERT_TRUE(data.ok());
  Matrix scaled = data->points;
  scaled *= 7.5;

  auto a = RunSubspaceClustering(data->points, 3);
  auto b = RunSubspaceClustering(scaled, 3);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->labels, b->labels);
}

TEST(PropertyTest, TscAffinityIgnoresSignFlips) {
  SyntheticOptions synth;
  synth.ambient_dim = 12;
  synth.subspace_dim = 2;
  synth.num_subspaces = 3;
  synth.points_per_subspace = 15;
  synth.seed = 9;
  auto data = GenerateUnionOfSubspaces(synth);
  ASSERT_TRUE(data.ok());
  Matrix flipped = data->points;
  Rng rng(10);
  for (int64_t j = 0; j < flipped.cols(); ++j) {
    if (rng.Uniform() < 0.5) {
      Scal(-1.0, flipped.ColData(j), flipped.rows());
    }
  }
  TscOptions options;
  options.q = 4;
  auto a = TscAffinity(data->points, options);
  auto b = TscAffinity(flipped, options);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_TRUE(AllClose(a->ToDense(), b->ToDense(), 1e-12));
}

TEST(PropertyTest, NmiIsSymmetric) {
  Rng rng(11);
  for (int trial = 0; trial < 10; ++trial) {
    std::vector<int64_t> a(40), b(40);
    for (auto& v : a) v = rng.UniformInt(4);
    for (auto& v : b) v = rng.UniformInt(3);
    EXPECT_NEAR(NormalizedMutualInformation(a, b),
                NormalizedMutualInformation(b, a), 1e-9);
  }
}

TEST(PropertyTest, AccuracyInvariantToLabelPermutation) {
  Rng rng(12);
  std::vector<int64_t> truth(60), pred(60);
  for (auto& v : truth) v = rng.UniformInt(5);
  for (auto& v : pred) v = rng.UniformInt(5);
  const double base = ClusteringAccuracy(truth, pred);
  // Relabel predictions through a random permutation.
  std::vector<int64_t> perm{0, 1, 2, 3, 4};
  rng.Shuffle(&perm);
  std::vector<int64_t> relabeled(pred.size());
  for (size_t i = 0; i < pred.size(); ++i) {
    relabeled[i] = perm[static_cast<size_t>(pred[i])];
  }
  EXPECT_NEAR(ClusteringAccuracy(truth, relabeled), base, 1e-9);
}

TEST(PropertyTest, HungarianInvariantToRowOffsets) {
  // Adding a constant to one row shifts the optimum by that constant but
  // never changes the argmin assignment.
  Rng rng(13);
  Matrix cost(4, 4);
  for (int64_t j = 0; j < 4; ++j) {
    for (int64_t i = 0; i < 4; ++i) cost(i, j) = rng.Uniform(0.0, 9.0);
  }
  std::vector<int64_t> base_assignment;
  const double base = SolveAssignment(cost, &base_assignment);
  Matrix shifted = cost;
  for (int64_t j = 0; j < 4; ++j) shifted(2, j) += 5.0;
  std::vector<int64_t> shifted_assignment;
  const double total = SolveAssignment(shifted, &shifted_assignment);
  EXPECT_EQ(base_assignment, shifted_assignment);
  EXPECT_NEAR(total, base + 5.0, 1e-9);
}

TEST(PropertyTest, KMeansIsTranslationInvariant) {
  Rng rng(14);
  Matrix points(4, 50);
  for (int64_t j = 0; j < 50; ++j) {
    for (int64_t i = 0; i < 4; ++i) {
      points(i, j) = rng.Gaussian() + (j < 25 ? 10.0 : -10.0);
    }
  }
  Matrix translated = points;
  for (int64_t j = 0; j < 50; ++j) {
    for (int64_t i = 0; i < 4; ++i) translated(i, j) += 123.0;
  }
  KMeansOptions options;
  options.seed = 55;
  auto a = KMeans(points, 2, options);
  auto b = KMeans(translated, 2, options);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->labels, b->labels);
  EXPECT_NEAR(a->inertia, b->inertia, 1e-6 * (1.0 + a->inertia));
}

TEST(PropertyTest, PartitionPermutationCoversAllClusterSizes) {
  // Re-running the partitioner with many seeds never loses a point and
  // never leaves a cluster uncovered.
  SyntheticOptions synth;
  synth.ambient_dim = 8;
  synth.subspace_dim = 2;
  synth.num_subspaces = 6;
  synth.points_per_subspace = 30;
  synth.seed = 15;
  auto data = GenerateUnionOfSubspaces(synth);
  ASSERT_TRUE(data.ok());
  for (uint64_t seed = 0; seed < 12; ++seed) {
    PartitionOptions partition;
    partition.num_devices = 9;
    partition.clusters_per_device = 2;
    partition.seed = seed;
    auto fed = PartitionAcrossDevices(*data, partition);
    ASSERT_TRUE(fed.ok());
    int64_t total = 0;
    for (const auto& idx : fed->global_index) {
      total += static_cast<int64_t>(idx.size());
    }
    EXPECT_EQ(total, data->points.cols());
    for (int64_t holders : fed->DevicesPerCluster()) EXPECT_GE(holders, 1);
    for (int64_t count : fed->ClustersPerDevice()) EXPECT_LE(count, 2);
  }
}

TEST(PropertyTest, EigenvalueSumMatchesTraceAcrossSizes) {
  Rng rng(16);
  for (int64_t n : {2, 5, 9, 17, 31}) {
    Matrix a(n, n);
    for (int64_t j = 0; j < n; ++j) {
      for (int64_t i = 0; i <= j; ++i) {
        const double v = rng.Gaussian();
        a(i, j) = v;
        a(j, i) = v;
      }
    }
    auto values = SymmetricEigenvalues(a);
    ASSERT_TRUE(values.ok());
    double trace = 0.0;
    for (int64_t i = 0; i < n; ++i) trace += a(i, i);
    EXPECT_NEAR(std::accumulate(values->begin(), values->end(), 0.0), trace,
                1e-8 * (1.0 + std::fabs(trace)));
  }
}

}  // namespace
}  // namespace fedsc
