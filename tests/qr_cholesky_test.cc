#include <cmath>
#include <utility>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "linalg/blas.h"
#include "linalg/cholesky.h"
#include "linalg/qr.h"

namespace fedsc {
namespace {

Matrix RandomMatrix(int64_t rows, int64_t cols, Rng* rng) {
  Matrix m(rows, cols);
  for (int64_t j = 0; j < cols; ++j) {
    for (int64_t i = 0; i < rows; ++i) m(i, j) = rng->Gaussian();
  }
  return m;
}

Matrix RandomSpd(int64_t n, Rng* rng) {
  const Matrix a = RandomMatrix(n, n, rng);
  Matrix spd = Gram(a);
  for (int64_t i = 0; i < n; ++i) spd(i, i) += static_cast<double>(n);
  return spd;
}

class QrShapeTest
    : public ::testing::TestWithParam<std::pair<int64_t, int64_t>> {};

TEST_P(QrShapeTest, ReconstructsAndIsOrthonormal) {
  const auto [rows, cols] = GetParam();
  Rng rng(100 + rows * 31 + cols);
  const Matrix a = RandomMatrix(rows, cols, &rng);
  auto qr = HouseholderQr(a);
  ASSERT_TRUE(qr.ok()) << qr.status().ToString();
  const int64_t k = std::min(rows, cols);
  EXPECT_EQ(qr->q.rows(), rows);
  EXPECT_EQ(qr->q.cols(), k);
  EXPECT_EQ(qr->r.rows(), k);
  EXPECT_EQ(qr->r.cols(), cols);

  // A = Q R.
  EXPECT_TRUE(AllClose(MatMul(qr->q, qr->r), a, 1e-10));
  // Q^T Q = I.
  EXPECT_TRUE(AllClose(Gram(qr->q), Matrix::Identity(k), 1e-12));
  // R upper triangular.
  for (int64_t j = 0; j < cols; ++j) {
    for (int64_t i = j + 1; i < k; ++i) EXPECT_EQ(qr->r(i, j), 0.0);
  }
}

INSTANTIATE_TEST_SUITE_P(Shapes, QrShapeTest,
                         ::testing::Values(std::pair<int64_t, int64_t>{1, 1},
                                           std::pair<int64_t, int64_t>{5, 5},
                                           std::pair<int64_t, int64_t>{12, 4},
                                           std::pair<int64_t, int64_t>{4, 12},
                                           std::pair<int64_t, int64_t>{30, 7},
                                           std::pair<int64_t, int64_t>{64,
                                                                       64}));

TEST(QrTest, EmptyInputFails) {
  EXPECT_FALSE(HouseholderQr(Matrix()).ok());
}

// --- Blocked vs. unblocked engine agreement (tentpole coverage) ---

class QrEngineTest
    : public ::testing::TestWithParam<std::pair<int64_t, int64_t>> {};

TEST_P(QrEngineTest, BlockedAgreesWithUnblocked) {
  const auto [rows, cols] = GetParam();
  Rng rng(900 + rows * 13 + cols);
  const Matrix a = RandomMatrix(rows, cols, &rng);
  QrOptions unblocked;
  unblocked.variant = QrVariant::kUnblocked;
  QrOptions blocked;
  blocked.variant = QrVariant::kBlocked;
  auto qu = HouseholderQr(a, unblocked);
  auto qb = HouseholderQr(a, blocked);
  ASSERT_TRUE(qu.ok()) << qu.status().ToString();
  ASSERT_TRUE(qb.ok()) << qb.status().ToString();

  const int64_t k = std::min(rows, cols);
  // Both engines reconstruct A with orthonormal Q.
  EXPECT_TRUE(AllClose(MatMul(qb->q, qb->r), a, 1e-10));
  EXPECT_TRUE(AllClose(Gram(qb->q), Matrix::Identity(k), 1e-12));
  // Same sign convention (beta = -copysign(|x|, alpha) in both engines), so
  // the factors agree directly — no column-sign fixup needed.
  EXPECT_TRUE(AllClose(qb->q, qu->q, 1e-10));
  EXPECT_TRUE(AllClose(qb->r, qu->r, 1e-9));
  for (int64_t j = 0; j < k; ++j) {
    if (qu->r(j, j) != 0.0) {
      EXPECT_GT(qb->r(j, j) * qu->r(j, j), 0.0) << "diagonal sign at " << j;
    }
  }
  // R strictly upper triangular below the diagonal in the blocked engine
  // too (exact zeros, not small values).
  for (int64_t j = 0; j < cols; ++j) {
    for (int64_t i = j + 1; i < k; ++i) EXPECT_EQ(qb->r(i, j), 0.0);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, QrEngineTest,
    ::testing::Values(std::pair<int64_t, int64_t>{1, 1},     // degenerate
                      std::pair<int64_t, int64_t>{33, 1},    // n = 1
                      std::pair<int64_t, int64_t>{64, 64},   // m = n
                      std::pair<int64_t, int64_t>{96, 96},   // m = n > panel
                      std::pair<int64_t, int64_t>{200, 40},  // tall, 2 panels
                      std::pair<int64_t, int64_t>{40, 200},  // wide
                      std::pair<int64_t, int64_t>{257, 65},  // odd panel tail
                      std::pair<int64_t, int64_t>{31, 33}));

TEST(QrEngineTest, AutoDispatchIsPureFunctionOfShape) {
  Rng rng(41);
  // Below the cutoff kAuto must reproduce the unblocked bits exactly.
  const Matrix small = RandomMatrix(64, 32, &rng);  // 2048 < 2^13
  ASSERT_LT(small.rows() * small.cols(), kBlockedQrCutoff);
  QrOptions pinned;
  pinned.variant = QrVariant::kUnblocked;
  auto qa = HouseholderQr(small);
  auto qp = HouseholderQr(small, pinned);
  ASSERT_TRUE(qa.ok() && qp.ok());
  for (int64_t j = 0; j < qa->q.cols(); ++j) {
    for (int64_t i = 0; i < qa->q.rows(); ++i) {
      ASSERT_EQ(qa->q(i, j), qp->q(i, j));
    }
  }
  // At/above the cutoff kAuto must reproduce the blocked bits exactly.
  const Matrix large = RandomMatrix(256, 32, &rng);  // 8192 = 2^13
  ASSERT_GE(large.rows() * large.cols(), kBlockedQrCutoff);
  QrOptions blocked;
  blocked.variant = QrVariant::kBlocked;
  auto la = HouseholderQr(large);
  auto lb = HouseholderQr(large, blocked);
  ASSERT_TRUE(la.ok() && lb.ok());
  for (int64_t j = 0; j < la->q.cols(); ++j) {
    for (int64_t i = 0; i < la->q.rows(); ++i) {
      ASSERT_EQ(la->q(i, j), lb->q(i, j));
    }
  }
  // A single skinny panel (n < kBlockedQrMinCols) has no trailing matrix to
  // amortize the compact-WY overhead, so kAuto stays unblocked no matter
  // how tall the matrix gets.
  const Matrix skinny = RandomMatrix(1024, 8, &rng);  // 8192 >= 2^13, n < 16
  ASSERT_GE(skinny.rows() * skinny.cols(), kBlockedQrCutoff);
  ASSERT_LT(skinny.cols(), kBlockedQrMinCols);
  auto sa = HouseholderQr(skinny);
  auto sp = HouseholderQr(skinny, pinned);
  ASSERT_TRUE(sa.ok() && sp.ok());
  for (int64_t j = 0; j < sa->q.cols(); ++j) {
    for (int64_t i = 0; i < sa->q.rows(); ++i) {
      ASSERT_EQ(sa->q(i, j), sp->q(i, j));
    }
  }
}

TEST(QrEngineTest, BlockedHandlesRankDeficientColumns) {
  Rng rng(43);
  // 120 x 40 with every third column a copy of the one before it.
  Matrix a = RandomMatrix(120, 40, &rng);
  for (int64_t j = 2; j < a.cols(); j += 3) {
    for (int64_t i = 0; i < a.rows(); ++i) a(i, j) = a(i, j - 1);
  }
  QrOptions blocked;
  blocked.variant = QrVariant::kBlocked;
  auto qr = HouseholderQr(a, blocked);
  ASSERT_TRUE(qr.ok());
  EXPECT_TRUE(AllClose(MatMul(qr->q, qr->r), a, 1e-10));
  EXPECT_TRUE(AllClose(Gram(qr->q), Matrix::Identity(40), 1e-12));
}

TEST(QrEngineTest, BlockedHandlesZeroMatrix) {
  QrOptions blocked;
  blocked.variant = QrVariant::kBlocked;
  auto qr = HouseholderQr(Matrix(50, 20), blocked);
  ASSERT_TRUE(qr.ok());
  EXPECT_TRUE(AllClose(qr->r, Matrix(20, 20), 0.0));
  EXPECT_TRUE(AllClose(MatMul(qr->q, qr->r), Matrix(50, 20), 0.0));
}

TEST(QrTest, HandlesDependentColumns) {
  Matrix a = Matrix::FromColumns({{1, 0, 0}, {2, 0, 0}, {0, 1, 0}});
  auto qr = HouseholderQr(a);
  ASSERT_TRUE(qr.ok());
  EXPECT_TRUE(AllClose(MatMul(qr->q, qr->r), a, 1e-12));
}

TEST(OrthonormalBasisTest, DropsDependentColumns) {
  const Matrix a = Matrix::FromColumns({{1, 0, 0}, {2, 0, 0}, {0, 3, 0}});
  const Matrix basis = OrthonormalColumnBasis(a);
  EXPECT_EQ(basis.cols(), 2);
  EXPECT_TRUE(AllClose(Gram(basis), Matrix::Identity(2), 1e-12));
}

TEST(OrthonormalBasisTest, ZeroMatrixGivesEmptyBasis) {
  EXPECT_EQ(OrthonormalColumnBasis(Matrix(4, 3)).cols(), 0);
}

TEST(OrthonormalBasisTest, SpansTheSameSpace) {
  Rng rng(7);
  const Matrix a = RandomMatrix(10, 4, &rng);
  const Matrix basis = OrthonormalColumnBasis(a);
  ASSERT_EQ(basis.cols(), 4);
  // Every original column is reproduced by its projection onto the basis.
  const Matrix coeffs = MatMulTN(basis, a);
  EXPECT_TRUE(AllClose(MatMul(basis, coeffs), a, 1e-10));
}

TEST(CholeskyTest, FactorReconstructs) {
  Rng rng(11);
  for (int64_t n : {1, 2, 5, 20, 60}) {
    const Matrix a = RandomSpd(n, &rng);
    auto l = CholeskyFactor(a);
    ASSERT_TRUE(l.ok()) << l.status().ToString();
    EXPECT_TRUE(AllClose(MatMulNT(*l, *l), a, 1e-8 * a.MaxAbs()));
    for (int64_t j = 0; j < n; ++j) {
      for (int64_t i = 0; i < j; ++i) EXPECT_EQ((*l)(i, j), 0.0);
    }
  }
}

TEST(CholeskyTest, RejectsNonSpd) {
  Matrix a = Matrix::Identity(3);
  a(2, 2) = -1.0;
  EXPECT_EQ(CholeskyFactor(a).status().code(),
            StatusCode::kFailedPrecondition);
  EXPECT_FALSE(CholeskyFactor(Matrix(2, 3)).ok());
}

TEST(CholeskyTest, SolveSpdMatchesMultiply) {
  Rng rng(13);
  const Matrix a = RandomSpd(8, &rng);
  const Matrix x_true = RandomMatrix(8, 3, &rng);
  const Matrix b = MatMul(a, x_true);
  auto x = SolveSpd(a, b);
  ASSERT_TRUE(x.ok());
  EXPECT_TRUE(AllClose(*x, x_true, 1e-8));
}

TEST(CholeskyTest, SpdInverse) {
  Rng rng(17);
  const Matrix a = RandomSpd(6, &rng);
  auto inv = SpdInverse(a);
  ASSERT_TRUE(inv.ok());
  EXPECT_TRUE(AllClose(MatMul(a, *inv), Matrix::Identity(6), 1e-8));
}

TEST(CholeskyTest, TriangularSolvesInPlace) {
  Matrix l(2, 2);
  l(0, 0) = 2.0;
  l(1, 0) = 1.0;
  l(1, 1) = 3.0;
  Matrix b = Matrix::FromColumn({4.0, 11.0});
  SolveLowerInPlace(l, &b);   // y0 = 2, y1 = (11 - 2)/3 = 3
  EXPECT_NEAR(b(0, 0), 2.0, 1e-12);
  EXPECT_NEAR(b(1, 0), 3.0, 1e-12);
  SolveLowerTransposedInPlace(l, &b);  // x1 = 1, x0 = (2 - 1)/2 = 0.5
  EXPECT_NEAR(b(1, 0), 1.0, 1e-12);
  EXPECT_NEAR(b(0, 0), 0.5, 1e-12);
}

}  // namespace
}  // namespace fedsc
