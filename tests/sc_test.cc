#include <algorithm>
#include <set>
#include <cmath>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "data/synthetic.h"
#include "linalg/blas.h"
#include "metrics/clustering_metrics.h"
#include "sc/affinity.h"
#include "sc/pipeline.h"

namespace fedsc {
namespace {

// Fraction of affinity mass that crosses ground-truth clusters; 0 means the
// graph satisfies the self-expressiveness property (SEP).
double CrossClusterMass(const SparseMatrix& w,
                        const std::vector<int64_t>& truth) {
  double cross = 0.0;
  double total = 0.0;
  for (int64_t r = 0; r < w.rows(); ++r) {
    for (int64_t k = w.row_ptr()[static_cast<size_t>(r)];
         k < w.row_ptr()[static_cast<size_t>(r) + 1]; ++k) {
      const int64_t c = w.col_idx()[static_cast<size_t>(k)];
      const double v = std::fabs(w.values()[static_cast<size_t>(k)]);
      total += v;
      if (truth[static_cast<size_t>(r)] != truth[static_cast<size_t>(c)]) {
        cross += v;
      }
    }
  }
  return total > 0.0 ? cross / total : 0.0;
}

Dataset EasySubspaces(int64_t num_subspaces, int64_t per_subspace,
                      uint64_t seed) {
  SyntheticOptions options;
  options.ambient_dim = 30;
  options.subspace_dim = 3;
  options.num_subspaces = num_subspaces;
  options.points_per_subspace = per_subspace;
  options.seed = seed;
  auto data = GenerateUnionOfSubspaces(options);
  EXPECT_TRUE(data.ok());
  return std::move(data).value();
}

TEST(AffinityTest, FromCoefficientsSymmetrizesAbs) {
  const SparseMatrix c =
      SparseMatrix::FromTriplets(3, 3, {{0, 1, -2.0}, {2, 1, 1.0}});
  const Matrix w = AffinityFromCoefficients(c).ToDense();
  EXPECT_EQ(w(0, 1), 2.0);
  EXPECT_EQ(w(1, 0), 2.0);
  EXPECT_EQ(w(2, 1), 1.0);
  EXPECT_EQ(w(1, 2), 1.0);
  EXPECT_TRUE(AllClose(w, w.Transposed(), 0.0));
}

TEST(AffinityTest, SparsifyKeepsTopKPerColumn) {
  Matrix c(4, 4);
  c(0, 1) = 5.0;
  c(2, 1) = 3.0;
  c(3, 1) = 1.0;
  c(1, 1) = 9.0;  // diagonal must be dropped
  const SparseMatrix s = SparsifyCoefficients(c, 2);
  const Matrix dense = s.ToDense();
  EXPECT_EQ(dense(0, 1), 5.0);
  EXPECT_EQ(dense(2, 1), 3.0);
  EXPECT_EQ(dense(3, 1), 0.0);
  EXPECT_EQ(dense(1, 1), 0.0);
}

TEST(SscAdmmTest, SelfExpressionReconstructsPoints) {
  const Dataset data = EasySubspaces(3, 25, 42);
  auto c = SscSelfExpression(data.points);
  ASSERT_TRUE(c.ok()) << c.status().ToString();
  // X C ~ X column-wise.
  const Matrix dense_c = c->ToDense();
  const Matrix reconstruction = MatMul(data.points, dense_c);
  const Matrix diff = reconstruction - data.points;
  EXPECT_LT(diff.FrobeniusNorm() / data.points.FrobeniusNorm(), 0.05);
  // Diagonal is zero.
  for (int64_t i = 0; i < dense_c.rows(); ++i) {
    EXPECT_EQ(dense_c(i, i), 0.0);
  }
}

TEST(SscAdmmTest, SepOnWellSeparatedSubspaces) {
  const Dataset data = EasySubspaces(4, 30, 7);
  auto c = SscSelfExpression(data.points);
  ASSERT_TRUE(c.ok());
  EXPECT_LT(CrossClusterMass(AffinityFromCoefficients(*c), data.labels),
            0.02);
}

TEST(SscAdmmTest, LambdaRuleAndValidation) {
  const Dataset data = EasySubspaces(2, 10, 3);
  EXPECT_GT(SscLambda(data.points, 50.0), 0.0);
  SscAdmmOptions bad;
  bad.alpha = 0.5;
  EXPECT_FALSE(SscSelfExpression(data.points, bad).ok());
  EXPECT_FALSE(SscSelfExpression(Matrix(3, 1)).ok());
}

TEST(SscAdmmTest, LambdaFromPrecomputedGramMatchesAndIsThreadInvariant) {
  // Callers that already hold X^T X (the ADMM solver itself) must get the
  // exact same lambda without recomputing the Gram, for any thread count.
  const Dataset data = EasySubspaces(3, 40, 5);
  const double serial = SscLambda(data.points, 50.0);
  const Matrix gram = Gram(data.points);
  EXPECT_EQ(SscLambdaFromGram(gram, 50.0), serial);
  for (int threads : {2, 8}) {
    EXPECT_EQ(SscLambda(data.points, 50.0, threads), serial) << threads;
    EXPECT_EQ(SscLambdaFromGram(gram, 50.0, threads), serial) << threads;
  }
}

TEST(SscAdmmTest, OrthogonalPairIsDegenerate) {
  // Two exactly orthogonal points: mu = 0.
  const Matrix x = Matrix::FromColumns({{1, 0}, {0, 1}});
  EXPECT_EQ(SscSelfExpression(x).status().code(),
            StatusCode::kFailedPrecondition);
}

TEST(SscOmpTest, SupportsStayWithinSubspace) {
  const Dataset data = EasySubspaces(4, 25, 11);
  SscOmpOptions options;
  options.max_support = 3;
  auto c = SscOmpSelfExpression(data.points, options);
  ASSERT_TRUE(c.ok());
  EXPECT_LT(CrossClusterMass(AffinityFromCoefficients(*c), data.labels),
            0.05);
  EXPECT_FALSE(SscOmpSelfExpression(Matrix(3, 1)).ok());
}

TEST(TscTest, NeighborsAreWithinSubspace) {
  const Dataset data = EasySubspaces(4, 30, 13);
  TscOptions options;
  options.q = 3;
  auto w = TscAffinity(data.points, options);
  ASSERT_TRUE(w.ok());
  EXPECT_LT(CrossClusterMass(*w, data.labels), 0.05);
}

TEST(TscTest, WeightsAreSphericalDistances) {
  // Three points: x1 close to x0, x2 orthogonal-ish.
  Matrix x = Matrix::FromColumns({{1, 0}, {0.9, std::sqrt(1 - 0.81)}, {0, 1}});
  TscOptions options;
  options.q = 1;
  auto w = TscAffinity(x, options);
  ASSERT_TRUE(w.ok());
  const Matrix dense = w->ToDense();
  // Edge 0-1 carries weight >= exp(-2 acos(0.9)).
  EXPECT_GE(dense(0, 1), std::exp(-2.0 * std::acos(0.9)) - 1e-9);
  EXPECT_FALSE(TscAffinity(x, {.q = 0}).ok());
  EXPECT_FALSE(TscAffinity(x, {.q = 3}).ok());
}

TEST(NsnTest, NeighborsAreWithinSubspace) {
  const Dataset data = EasySubspaces(4, 30, 17);
  NsnOptions options;
  options.num_neighbors = 4;
  options.max_subspace_dim = 3;
  auto w = NsnAffinity(data.points, options);
  ASSERT_TRUE(w.ok());
  EXPECT_LT(CrossClusterMass(*w, data.labels), 0.08);
  // 0/1 weights.
  for (double v : w->values()) EXPECT_EQ(v, 1.0);
}

TEST(NsnTest, RejectsBadNeighborCount) {
  EXPECT_FALSE(NsnAffinity(Matrix(3, 5), {.num_neighbors = 0}).ok());
  EXPECT_FALSE(NsnAffinity(Matrix(3, 5), {.num_neighbors = 5}).ok());
}

TEST(EnscTest, SelfExpressionHoldsSep) {
  const Dataset data = EasySubspaces(4, 25, 19);
  auto c = EnscSelfExpression(data.points);
  ASSERT_TRUE(c.ok()) << c.status().ToString();
  EXPECT_LT(CrossClusterMass(AffinityFromCoefficients(*c), data.labels),
            0.05);
}

TEST(EnscTest, MixValidation) {
  EXPECT_FALSE(EnscSelfExpression(Matrix(3, 5), {.mix = 0.0}).ok());
  EXPECT_FALSE(EnscSelfExpression(Matrix(3, 5), {.mix = 1.5}).ok());
}

class PipelineMethodTest : public ::testing::TestWithParam<ScMethod> {};

TEST_P(PipelineMethodTest, ClustersEasySubspacesAccurately) {
  const Dataset data = EasySubspaces(4, 30, 23);
  ScPipelineOptions options;
  options.method = GetParam();
  options.tsc.q = 5;
  options.nsn.num_neighbors = 5;
  options.ssc_omp.max_support = 3;
  auto result = RunSubspaceClustering(data.points, data.num_clusters, options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_GE(ClusteringAccuracy(data.labels, result->labels), 97.0)
      << ScMethodName(GetParam());
  EXPECT_GT(result->seconds, 0.0);
}

INSTANTIATE_TEST_SUITE_P(AllMethods, PipelineMethodTest,
                         ::testing::Values(ScMethod::kSsc, ScMethod::kSscOmp,
                                           ScMethod::kEnsc, ScMethod::kTsc,
                                           ScMethod::kNsn, ScMethod::kEsc),
                         [](const auto& info) {
                           return ScMethodName(info.param);
                         });

TEST(PipelineTest, NoisyDataStillClusters) {
  SyntheticOptions options;
  options.ambient_dim = 30;
  options.subspace_dim = 3;
  options.num_subspaces = 3;
  options.points_per_subspace = 40;
  options.noise_stddev = 0.03;
  options.seed = 29;
  auto data = GenerateUnionOfSubspaces(options);
  ASSERT_TRUE(data.ok());
  auto result = RunSubspaceClustering(data->points, 3);
  ASSERT_TRUE(result.ok());
  EXPECT_GE(ClusteringAccuracy(data->labels, result->labels), 95.0);
}

TEST(PipelineTest, InvalidClusterCount) {
  EXPECT_FALSE(RunSubspaceClustering(Matrix(3, 5), 0).ok());
  EXPECT_FALSE(RunSubspaceClustering(Matrix(3, 5), 6).ok());
}

TEST(PipelineTest, MethodNames) {
  EXPECT_STREQ(ScMethodName(ScMethod::kSsc), "SSC");
  EXPECT_STREQ(ScMethodName(ScMethod::kSscOmp), "SSCOMP");
  EXPECT_STREQ(ScMethodName(ScMethod::kEnsc), "EnSC");
  EXPECT_STREQ(ScMethodName(ScMethod::kTsc), "TSC");
  EXPECT_STREQ(ScMethodName(ScMethod::kNsn), "NSN");
}

TEST(SscAdmmTest, DeadlineExceededSurfacesAsStatus) {
  const Dataset data = EasySubspaces(4, 60, 31);
  SscAdmmOptions options;
  options.deadline_seconds = 1e-9;  // impossible budget
  EXPECT_EQ(SscSelfExpression(data.points, options).status().code(),
            StatusCode::kDeadlineExceeded);
  options.deadline_seconds = 60.0;  // generous budget: solves normally
  EXPECT_TRUE(SscSelfExpression(data.points, options).ok());
}

// Union of affine subspaces: offset points need the 1^T c = 1 constraint.
Dataset AffineSubspaces(uint64_t seed) {
  Rng rng(seed);
  Dataset data;
  data.num_clusters = 3;
  const int64_t n = 12;
  const int64_t per = 25;
  data.points = Matrix(n, 3 * per);
  for (int64_t l = 0; l < 3; ++l) {
    const Matrix basis = RandomOrthonormalBasis(n, 2, &rng);
    Vector offset(static_cast<size_t>(n));
    for (auto& v : offset) v = 2.0 * rng.Gaussian();
    for (int64_t p = 0; p < per; ++p) {
      double* col = data.points.ColData(l * per + p);
      const Vector coeff = rng.GaussianVector(2);
      Gemv(Trans::kNo, 1.0, basis, coeff.data(), 0.0, col);
      Axpy(1.0, offset.data(), col, n);
      data.labels.push_back(l);
    }
  }
  return data;
}

TEST(SscAdmmTest, AffineConstraintIsSatisfied) {
  const Dataset data = AffineSubspaces(71);
  SscAdmmOptions options;
  options.affine = true;
  options.drop_tol = 0.0;
  options.max_iterations = 400;
  auto c = SscSelfExpression(data.points, options);
  ASSERT_TRUE(c.ok()) << c.status().ToString();
  const Matrix dense = c->ToDense();
  for (int64_t j = 0; j < dense.cols(); ++j) {
    double colsum = 0.0;
    for (int64_t i = 0; i < dense.rows(); ++i) colsum += dense(i, j);
    EXPECT_NEAR(colsum, 1.0, 0.05) << "column " << j;
  }
}

TEST(SscAdmmTest, AffineModeClustersAffineData) {
  const Dataset data = AffineSubspaces(73);
  ScPipelineOptions options;
  options.method = ScMethod::kSsc;
  options.normalize_columns = false;  // normalization destroys offsets
  options.ssc.affine = true;
  auto affine = RunSubspaceClustering(data.points, 3, options);
  ASSERT_TRUE(affine.ok()) << affine.status().ToString();
  EXPECT_GE(ClusteringAccuracy(data.labels, affine->labels), 95.0);
}

TEST(EscTest, ExemplarsAreDistinctAndSpreadAcrossClusters) {
  const Dataset data = EasySubspaces(4, 30, 79);
  EscOptions options;
  options.num_exemplars = 12;
  auto exemplars = SelectExemplars(data.points, options);
  ASSERT_TRUE(exemplars.ok()) << exemplars.status().ToString();
  ASSERT_EQ(exemplars->size(), 12u);
  std::set<int64_t> unique(exemplars->begin(), exemplars->end());
  EXPECT_EQ(unique.size(), 12u);
  // Farthest-first in representation cost must touch every cluster.
  std::set<int64_t> covered;
  for (int64_t e : *exemplars) {
    covered.insert(data.labels[static_cast<size_t>(e)]);
  }
  EXPECT_EQ(covered.size(), 4u);
}

TEST(EscTest, AffinityHoldsSepAndClusters) {
  const Dataset data = EasySubspaces(4, 30, 83);
  EscOptions options;
  options.num_exemplars = 16;
  options.q_neighbors = 5;
  auto w = EscAffinity(data.points, options);
  ASSERT_TRUE(w.ok());
  EXPECT_LT(CrossClusterMass(*w, data.labels), 0.10);

  ScPipelineOptions pipeline;
  pipeline.method = ScMethod::kEsc;
  pipeline.esc = options;
  auto result = RunSubspaceClustering(data.points, 4, pipeline);
  ASSERT_TRUE(result.ok());
  EXPECT_GE(ClusteringAccuracy(data.labels, result->labels), 95.0);
}

TEST(EscTest, Validation) {
  EXPECT_FALSE(EscAffinity(Matrix(3, 1), {}).ok());
  EXPECT_FALSE(EscAffinity(Matrix(3, 5), {.num_exemplars = 0}).ok());
  EXPECT_FALSE(
      EscAffinity(Matrix(3, 5), {.num_exemplars = 2, .q_neighbors = 5}).ok());
}

TEST(SscAdmmInfoTest, ConvergedSolveReportsIterationsBelowBudget) {
  const Dataset data = EasySubspaces(3, 30, 91);
  Matrix x = data.points;
  x.NormalizeColumns();

  SscAdmmOptions options;
  // A tolerance this dataset reaches well inside the budget; the point is
  // that a converged solve reports iterations strictly below it.
  options.tol = 1e-2;
  options.max_iterations = 500;
  SscAdmmInfo info;
  auto c = SscSelfExpression(x, options, &info);
  ASSERT_TRUE(c.ok()) << c.status().ToString();
  EXPECT_TRUE(info.converged);
  EXPECT_GT(info.iterations, 0);
  EXPECT_LT(info.iterations, options.max_iterations);
  EXPECT_LT(info.final_residual, options.tol);
  EXPECT_GE(info.final_residual, 0.0);
}

TEST(SscAdmmInfoTest, IterationStarvedSolveReportsNotConverged) {
  const Dataset data = EasySubspaces(3, 20, 92);
  Matrix x = data.points;
  x.NormalizeColumns();

  SscAdmmOptions options;
  options.max_iterations = 2;  // far too few to reach tol
  SscAdmmInfo info;
  auto c = SscSelfExpression(x, options, &info);
  ASSERT_TRUE(c.ok()) << c.status().ToString();
  EXPECT_FALSE(info.converged);
  EXPECT_EQ(info.iterations, options.max_iterations);
  EXPECT_GE(info.final_residual, options.tol);
}

}  // namespace
}  // namespace fedsc
