// Tests for the stateful client/server API (core/server.h) and the
// differential-privacy uplink (fed/privacy.h).

#include <cmath>
#include <limits>
#include <set>

#include <gtest/gtest.h>

#include "core/server.h"
#include "data/synthetic.h"
#include "fed/partition.h"
#include "fed/privacy.h"
#include "linalg/blas.h"
#include "metrics/clustering_metrics.h"

namespace fedsc {
namespace {

struct Federation {
  Dataset data;
  FederatedDataset fed;
};

Federation MakeFederation(int64_t num_subspaces, int64_t per_subspace,
                          int64_t num_devices, int64_t clusters_per_device,
                          uint64_t seed) {
  SyntheticOptions options;
  options.ambient_dim = 24;
  options.subspace_dim = 3;
  options.num_subspaces = num_subspaces;
  options.points_per_subspace = per_subspace;
  options.seed = seed;
  auto data = GenerateUnionOfSubspaces(options);
  EXPECT_TRUE(data.ok());
  PartitionOptions partition;
  partition.num_devices = num_devices;
  partition.clusters_per_device = clusters_per_device;
  partition.seed = seed ^ 0x1234;
  auto fed = PartitionAcrossDevices(*data, partition);
  EXPECT_TRUE(fed.ok());
  return {std::move(data).value(), std::move(fed).value()};
}

TEST(FedScServerTest, MatchesBatchPipelineQuality) {
  Federation f = MakeFederation(5, 60, 12, 2, 301);
  FedScOptions options;

  FedScServer server(5, options);
  std::vector<FedScClient> clients;
  clients.reserve(static_cast<size_t>(f.fed.num_devices()));
  std::vector<int64_t> ids;
  Rng rng(77);
  for (int64_t z = 0; z < f.fed.num_devices(); ++z) {
    clients.emplace_back(f.fed.points[static_cast<size_t>(z)], options,
                         rng.Next());
    auto upload = clients.back().ProduceUpload();
    ASSERT_TRUE(upload.ok()) << upload.status().ToString();
    auto id = server.AddUpload(*upload);
    ASSERT_TRUE(id.ok());
    ids.push_back(*id);
  }
  ASSERT_TRUE(server.Cluster().ok());

  std::vector<std::vector<int64_t>> device_labels(
      static_cast<size_t>(f.fed.num_devices()));
  for (int64_t z = 0; z < f.fed.num_devices(); ++z) {
    auto assignments = server.AssignmentsFor(ids[static_cast<size_t>(z)]);
    ASSERT_TRUE(assignments.ok());
    auto labels =
        clients[static_cast<size_t>(z)].ApplyAssignments(*assignments);
    ASSERT_TRUE(labels.ok());
    device_labels[static_cast<size_t>(z)] = std::move(labels).value();
  }
  const auto global = f.fed.ToGlobalOrder(device_labels);
  EXPECT_GE(ClusteringAccuracy(f.data.labels, global), 98.0);
}

TEST(FedScServerTest, IncrementalDevicesReclusterCorrectly) {
  Federation f = MakeFederation(4, 60, 10, 2, 303);
  FedScOptions options;
  FedScServer server(4, options);

  // First half of the federation only: not enough subspace coverage is
  // possible, but the server still clusters what it has.
  std::vector<FedScClient> clients;
  Rng rng(88);
  for (int64_t z = 0; z < f.fed.num_devices(); ++z) {
    clients.emplace_back(f.fed.points[static_cast<size_t>(z)], options,
                         rng.Next());
  }
  for (int64_t z = 0; z < 5; ++z) {
    auto upload = clients[static_cast<size_t>(z)].ProduceUpload();
    ASSERT_TRUE(upload.ok());
    ASSERT_TRUE(server.AddUpload(*upload).ok());
  }
  ASSERT_TRUE(server.Cluster().ok());
  const int64_t samples_before = server.total_samples();

  // Late joiners invalidate the clustering; re-cluster covers them too.
  for (int64_t z = 5; z < f.fed.num_devices(); ++z) {
    auto upload = clients[static_cast<size_t>(z)].ProduceUpload();
    ASSERT_TRUE(upload.ok());
    ASSERT_TRUE(server.AddUpload(*upload).ok());
  }
  EXPECT_FALSE(server.AssignmentsFor(7).ok());  // stale until Cluster()
  ASSERT_TRUE(server.Cluster().ok());
  EXPECT_GT(server.total_samples(), samples_before);

  std::vector<std::vector<int64_t>> device_labels(
      static_cast<size_t>(f.fed.num_devices()));
  for (int64_t z = 0; z < f.fed.num_devices(); ++z) {
    auto assignments = server.AssignmentsFor(z);
    ASSERT_TRUE(assignments.ok());
    auto labels =
        clients[static_cast<size_t>(z)].ApplyAssignments(*assignments);
    ASSERT_TRUE(labels.ok());
    device_labels[static_cast<size_t>(z)] = std::move(labels).value();
  }
  const auto global = f.fed.ToGlobalOrder(device_labels);
  EXPECT_GE(ClusteringAccuracy(f.data.labels, global), 95.0);
}

TEST(FedScServerTest, Validation) {
  FedScOptions options;
  FedScServer server(3, options);
  EXPECT_FALSE(server.AddUpload(Matrix(4, 0)).ok());   // empty upload
  EXPECT_FALSE(server.Cluster().ok());                 // no samples yet
  Matrix upload(4, 2);
  upload(0, 0) = 1.0;
  upload(1, 1) = 1.0;
  ASSERT_TRUE(server.AddUpload(upload).ok());
  EXPECT_FALSE(server.AddUpload(Matrix(5, 2)).ok());   // dimension mismatch
  EXPECT_FALSE(server.AssignmentsFor(0).ok());         // not clustered
  EXPECT_FALSE(server.AssignmentsFor(9).ok());         // unknown id
}

TEST(FedScClientTest, AssignmentsValidation) {
  // Correlated points (mutually orthogonal data would make SSC degenerate).
  Rng rng(21);
  const Matrix basis = RandomOrthonormalBasis(6, 2, &rng);
  Matrix coeffs(2, 4);
  for (int64_t j = 0; j < 4; ++j) {
    coeffs(0, j) = rng.Gaussian();
    coeffs(1, j) = rng.Gaussian();
  }
  const Matrix points = MatMul(basis, coeffs);
  FedScClient client(points, FedScOptions{}, 5);
  EXPECT_FALSE(client.ApplyAssignments({0}).ok());  // before ProduceUpload
  ASSERT_TRUE(client.ProduceUpload().ok());
  std::vector<int64_t> wrong_size(
      static_cast<size_t>(client.num_samples() + 1), 0);
  EXPECT_FALSE(client.ApplyAssignments(wrong_size).ok());

  // Out-of-range assignments (e.g. a leaked failed-device sentinel) are
  // rejected instead of silently labeling points -1.
  std::vector<int64_t> negative(static_cast<size_t>(client.num_samples()),
                                0);
  negative.back() = -1;
  auto rejected = client.ApplyAssignments(negative);
  ASSERT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.status().code(), StatusCode::kInvalidArgument);

  std::vector<int64_t> valid(static_cast<size_t>(client.num_samples()), 0);
  EXPECT_TRUE(client.ApplyAssignments(valid).ok());
}

TEST(FedScServerTest, AddUploadQuarantinesCorruptColumns) {
  FedScOptions options;
  FedScServer server(2, options);
  Matrix upload(4, 3);
  upload(0, 0) = 1.0;                                      // honest
  upload(1, 1) = std::numeric_limits<double>::quiet_NaN();  // corrupt
  upload(2, 2) = 1.0;                                      // honest
  auto id = server.AddUpload(upload);
  ASSERT_TRUE(id.ok()) << id.status().ToString();
  EXPECT_EQ(server.total_samples(), 2);
  EXPECT_EQ(server.quarantined_samples(), 1);

  // An upload with no valid column at all is rejected outright.
  Matrix hopeless(4, 2);
  hopeless(0, 0) = std::numeric_limits<double>::infinity();
  hopeless(0, 1) = 1e9;  // far outside the norm acceptance bounds
  auto rejected = server.AddUpload(hopeless);
  ASSERT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(server.num_devices(), 1);
  EXPECT_EQ(server.quarantined_samples(), 3);
}

TEST(PrivacyTest, SigmaFormulaAndValidation) {
  DpOptions options;
  options.epsilon = 1.0;
  options.delta = 1e-5;
  options.sensitivity = 2.0;
  auto sigma = GaussianMechanismSigma(options);
  ASSERT_TRUE(sigma.ok());
  EXPECT_NEAR(*sigma, 2.0 * std::sqrt(2.0 * std::log(1.25e5)), 1e-9);

  options.epsilon = 0.0;
  EXPECT_FALSE(GaussianMechanismSigma(options).ok());
  options.epsilon = 1.5;  // outside the theorem's regime
  EXPECT_FALSE(GaussianMechanismSigma(options).ok());
  options.epsilon = 0.5;
  options.delta = 0.0;
  EXPECT_FALSE(GaussianMechanismSigma(options).ok());
  options.delta = 1e-5;
  options.sensitivity = -1.0;
  EXPECT_FALSE(GaussianMechanismSigma(options).ok());
}

TEST(PrivacyTest, ClipsAndPerturbsWithRequestedScale) {
  Rng rng(9);
  Matrix samples(2000, 2);
  for (int64_t i = 0; i < 2000; ++i) samples(i, 0) = 0.1;  // norm ~ 4.47 > 1
  DpOptions options;
  options.epsilon = 1.0;
  options.delta = 1e-3;
  options.sensitivity = 2.0;
  auto released = PrivatizeSamples(samples, options, &rng);
  ASSERT_TRUE(released.ok());
  const double sigma = *GaussianMechanismSigma(options);
  // Column 1 was all zeros: its released values are pure noise with
  // variance sigma^2.
  double sum2 = 0.0;
  for (int64_t i = 0; i < 2000; ++i) {
    sum2 += (*released)(i, 1) * (*released)(i, 1);
  }
  EXPECT_NEAR(sum2 / 2000.0, sigma * sigma, 0.1 * sigma * sigma);
}

TEST(PrivacyTest, FedScRunsEndToEndWithDp) {
  Federation f = MakeFederation(3, 40, 8, 2, 307);
  FedScOptions options;
  options.use_dp = true;
  options.dp.epsilon = 1.0;
  options.dp.delta = 1e-5;
  auto result = RunFedSc(f.fed, 3, options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  // With this much noise on 24-dim vectors, utility collapses — the honest
  // privacy-utility tradeoff. The pipeline must still be well-formed.
  EXPECT_EQ(result->global_labels.size(), f.data.labels.size());
  for (int64_t l : result->global_labels) {
    EXPECT_GE(l, 0);
    EXPECT_LT(l, 3);
  }
  // And DP must be deterministic under the same seed.
  auto repeat = RunFedSc(f.fed, 3, options);
  ASSERT_TRUE(repeat.ok());
  EXPECT_EQ(result->global_labels, repeat->global_labels);
}

}  // namespace
}  // namespace fedsc
