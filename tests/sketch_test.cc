// Tests for the sketched central-clustering path: dictionary construction
// (sc/sketch.h), sketched self-expression, the landmark-mediated affinity,
// Nystrom spectral extension, the CentralPath dispatch contract, and the
// end-to-end federated round over the sketched engine.

#include <algorithm>
#include <cmath>
#include <set>

#include <gtest/gtest.h>

#include "common/journal.h"
#include "common/rng.h"
#include "core/fedsc.h"
#include "data/synthetic.h"
#include "fed/partition.h"
#include "linalg/blas.h"
#include "metrics/clustering_metrics.h"
#include "sc/affinity.h"
#include "sc/pipeline.h"
#include "sc/sketch.h"

namespace fedsc {
namespace {

Dataset EasySubspaces(int64_t num_subspaces, int64_t per_subspace,
                      uint64_t seed, int64_t ambient = 30, int64_t dim = 3) {
  SyntheticOptions options;
  options.ambient_dim = ambient;
  options.subspace_dim = dim;
  options.num_subspaces = num_subspaces;
  options.points_per_subspace = per_subspace;
  options.seed = seed;
  auto data = GenerateUnionOfSubspaces(options);
  EXPECT_TRUE(data.ok());
  return std::move(data).value();
}

// Two clusters with very skewed sizes: `large` points in one subspace,
// `small` in another, columns normalized. Column order: large then small.
Matrix SkewedClusters(int64_t large, int64_t small, uint64_t seed) {
  const int64_t ambient = 24;
  const int64_t dim = 3;
  Rng rng(seed);
  const Matrix u1 = RandomOrthonormalBasis(ambient, dim, &rng);
  const Matrix u2 = RandomOrthonormalBasis(ambient, dim, &rng);
  Matrix x(ambient, large + small);
  for (int64_t j = 0; j < large + small; ++j) {
    const Matrix& basis = j < large ? u1 : u2;
    const Vector alpha = rng.GaussianVector(dim);
    const Vector col = Gemv(Trans::kNo, basis, alpha);
    x.SetCol(j, col.data());
  }
  x.NormalizeColumns();
  return x;
}

bool SparseExactlyEqual(const SparseMatrix& a, const SparseMatrix& b) {
  return a.rows() == b.rows() && a.cols() == b.cols() &&
         a.row_ptr() == b.row_ptr() && a.col_idx() == b.col_idx() &&
         a.values() == b.values();
}

TEST(SketchTest, KindNames) {
  EXPECT_STREQ(SketchKindName(SketchKind::kJl), "jl");
  EXPECT_STREQ(SketchKindName(SketchKind::kUniformLandmarks), "uniform");
  EXPECT_STREQ(SketchKindName(SketchKind::kLeverageLandmarks), "leverage");
}

TEST(SketchTest, DeterministicPerSeedAndBitIdenticalAcrossThreads) {
  const Dataset data = EasySubspaces(4, 50, 11);
  for (SketchKind kind : {SketchKind::kJl, SketchKind::kUniformLandmarks,
                          SketchKind::kLeverageLandmarks}) {
    SketchOptions options;
    options.dim = 32;
    options.kind = kind;
    options.seed = 7;
    auto base = SketchDictionary(data.points, options);
    ASSERT_TRUE(base.ok()) << base.status().ToString();
    EXPECT_EQ(base->dictionary.rows(), data.points.rows());
    EXPECT_EQ(base->dictionary.cols(), 32);
    if (kind == SketchKind::kJl) {
      EXPECT_TRUE(base->landmarks.empty());
    } else {
      // d distinct data columns, ascending.
      ASSERT_EQ(base->landmarks.size(), 32u);
      EXPECT_TRUE(std::is_sorted(base->landmarks.begin(),
                                 base->landmarks.end()));
      const std::set<int64_t> unique(base->landmarks.begin(),
                                     base->landmarks.end());
      EXPECT_EQ(unique.size(), base->landmarks.size());
    }
    for (int threads : {2, 8}) {
      SketchOptions threaded = options;
      threaded.num_threads = threads;
      auto again = SketchDictionary(data.points, threaded);
      ASSERT_TRUE(again.ok());
      EXPECT_TRUE(AllClose(base->dictionary, again->dictionary, 0.0))
          << SketchKindName(kind) << " nt=" << threads;
      EXPECT_EQ(base->landmarks, again->landmarks)
          << SketchKindName(kind) << " nt=" << threads;
    }
    // A different seed draws a different sketch.
    SketchOptions reseeded = options;
    reseeded.seed = 8;
    auto other = SketchDictionary(data.points, reseeded);
    ASSERT_TRUE(other.ok());
    EXPECT_FALSE(AllClose(base->dictionary, other->dictionary, 0.0))
        << SketchKindName(kind);
  }
}

TEST(SketchTest, JlColumnEnergyMatchesFrobeniusRule) {
  // For B = X S / sqrt(d) with random signs, E ||b_j||^2 = ||X||_F^2 / d.
  const Dataset data = EasySubspaces(4, 50, 3);
  SketchOptions options;
  options.dim = 64;
  options.kind = SketchKind::kJl;
  options.seed = 21;
  auto sketch = SketchDictionary(data.points, options);
  ASSERT_TRUE(sketch.ok());
  double mean_sq = 0.0;
  for (int64_t j = 0; j < sketch->dictionary.cols(); ++j) {
    const double norm = Norm2(sketch->dictionary.ColData(j),
                              sketch->dictionary.rows());
    mean_sq += norm * norm;
  }
  mean_sq /= static_cast<double>(sketch->dictionary.cols());
  const double frob = data.points.FrobeniusNorm();
  const double expected = frob * frob / 64.0;
  EXPECT_GT(mean_sq, 0.7 * expected);
  EXPECT_LT(mean_sq, 1.3 * expected);
}

TEST(SketchTest, LeverageScoresFavorSmallClusters) {
  // 200 points share one 3-dim subspace, 12 points another: each small-
  // cluster column carries far more of its subspace's identity, so its
  // ridge leverage must be higher on average.
  const int64_t large = 200;
  const int64_t small = 12;
  const Matrix x = SkewedClusters(large, small, 5);
  auto scores = RidgeLeverageScores(x, 1e-6);
  ASSERT_TRUE(scores.ok()) << scores.status().ToString();
  ASSERT_EQ(static_cast<int64_t>(scores->size()), large + small);
  double mean_large = 0.0;
  double mean_small = 0.0;
  for (int64_t j = 0; j < large; ++j) mean_large += (*scores)[j];
  for (int64_t j = large; j < large + small; ++j) mean_small += (*scores)[j];
  mean_large /= static_cast<double>(large);
  mean_small /= static_cast<double>(small);
  EXPECT_GT(mean_small, 2.0 * mean_large);

  // Thread counts do not change the scores.
  auto threaded = RidgeLeverageScores(x, 1e-6, 8);
  ASSERT_TRUE(threaded.ok());
  EXPECT_EQ(*scores, *threaded);
}

TEST(SketchTest, LeverageSamplingRepresentsSmallClusters) {
  const int64_t large = 200;
  const int64_t small = 12;
  const Matrix x = SkewedClusters(large, small, 9);
  SketchOptions options;
  options.dim = 16;
  options.kind = SketchKind::kLeverageLandmarks;
  options.seed = 13;
  auto sketch = SketchDictionary(x, options);
  ASSERT_TRUE(sketch.ok());
  int64_t small_landmarks = 0;
  for (int64_t landmark : sketch->landmarks) {
    if (landmark >= large) ++small_landmarks;
  }
  // Proportional sampling would expect 16 * 12/212 < 1 small-cluster
  // landmark; leverage sampling must keep the small subspace represented.
  EXPECT_GE(small_landmarks, 2);
}

TEST(SketchTest, RejectsDegenerateShapes) {
  const Matrix x = SkewedClusters(10, 5, 1);
  SketchOptions options;
  options.dim = 15;  // dim >= N has nothing to compress
  auto wide = SketchDictionary(x, options);
  EXPECT_FALSE(wide.ok());
  EXPECT_EQ(wide.status().code(), StatusCode::kInvalidArgument);
  options.dim = 0;
  EXPECT_FALSE(SketchDictionary(x, options).ok());
  EXPECT_FALSE(SketchDictionary(Matrix(8, 0), options).ok());
}

TEST(CentralPathTest, ResolutionContract) {
  ScPipelineOptions options;
  // Explicit exact always wins.
  options.central = CentralPath::kExact;
  EXPECT_EQ(ResolveCentralPath(options, 100000, 8), CentralPath::kExact);
  // Explicit sketch falls back to exact only when the sketch cannot be
  // narrower than the data.
  options.central = CentralPath::kSketched;
  options.sketch.dim = 50;
  EXPECT_EQ(ResolveCentralPath(options, 30, 4), CentralPath::kExact);
  EXPECT_EQ(ResolveCentralPath(options, 500, 4), CentralPath::kSketched);
  // Auto switches at the documented pure-shape cutoff.
  options.central = CentralPath::kAuto;
  options.sketch.dim = 0;
  EXPECT_EQ(ResolveCentralPath(options, kSketchedCutoffN - 1, 8),
            CentralPath::kExact);
  EXPECT_EQ(ResolveCentralPath(options, kSketchedCutoffN, 8),
            CentralPath::kSketched);
  // Auto never picks a path that cannot host num_clusters centroids.
  options.sketch.dim = 16;
  EXPECT_EQ(ResolveCentralPath(options, kSketchedCutoffN, 17),
            CentralPath::kExact);
  // Methods without a sketched solver stay exact under auto.
  options.sketch.dim = 0;
  options.method = ScMethod::kNsn;
  EXPECT_EQ(ResolveCentralPath(options, kSketchedCutoffN, 8),
            CentralPath::kExact);

  // The shape rule: N/16 clamped to [128, 1024], always below N.
  EXPECT_EQ(SketchDimForShape(100000, 0), 1024);
  EXPECT_EQ(SketchDimForShape(4096, 0), 256);
  EXPECT_EQ(SketchDimForShape(1000, 0), 128);
  EXPECT_EQ(SketchDimForShape(50, 0), 49);
  EXPECT_EQ(SketchDimForShape(500, 64), 64);
}

TEST(CentralPathTest, ExactPathPinsAutoBitsBelowCutoff) {
  // Below the cutoff, kAuto must be byte-for-byte the kExact engine — the
  // "today's bits" contract for every existing caller.
  const Dataset data = EasySubspaces(3, 40, 17);
  ScPipelineOptions exact;
  exact.central = CentralPath::kExact;
  auto pinned = RunSubspaceClustering(data.points, 3, exact);
  ASSERT_TRUE(pinned.ok()) << pinned.status().ToString();
  auto automatic = RunSubspaceClustering(data.points, 3, {});
  ASSERT_TRUE(automatic.ok());
  EXPECT_EQ(pinned->labels, automatic->labels);
  EXPECT_TRUE(SparseExactlyEqual(pinned->affinity, automatic->affinity));
  EXPECT_EQ(ClusteringAccuracy(data.labels, pinned->labels), 100.0);
}

TEST(CentralPathTest, SketchedNeedsClustersWithinSketchDim) {
  const Dataset data = EasySubspaces(4, 20, 23);
  ScPipelineOptions options;
  options.central = CentralPath::kSketched;
  options.sketch.dim = 3;
  auto result = RunSubspaceClustering(data.points, 4, options);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST(CentralPathTest, SketchedRejectsUnsupportedMethods) {
  const Dataset data = EasySubspaces(3, 30, 29);
  ScPipelineOptions options;
  options.method = ScMethod::kNsn;
  options.central = CentralPath::kSketched;
  options.sketch.dim = 16;
  auto result = RunSubspaceClustering(data.points, 3, options);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST(SketchedRunTest, RecoversClustersForEveryMethod) {
  const Dataset data = EasySubspaces(4, 80, 31);
  for (ScMethod method :
       {ScMethod::kSsc, ScMethod::kSscOmp, ScMethod::kTsc}) {
    ScPipelineOptions options;
    options.method = method;
    options.central = CentralPath::kSketched;
    options.sketch.dim = 64;
    options.sketch.seed = 2;
    auto result = RunSubspaceClustering(data.points, 4, options);
    ASSERT_TRUE(result.ok())
        << ScMethodName(method) << ": " << result.status().ToString();
    EXPECT_GE(ClusteringAccuracy(data.labels, result->labels), 95.0)
        << ScMethodName(method);
  }
}

TEST(SketchedRunTest, BitIdenticalAcrossThreadCounts) {
  const Dataset data = EasySubspaces(4, 80, 37);
  for (ScMethod method :
       {ScMethod::kSsc, ScMethod::kSscOmp, ScMethod::kTsc}) {
    auto run = [&](int threads) {
      ScPipelineOptions options;
      options.method = method;
      options.central = CentralPath::kSketched;
      options.sketch.dim = 48;
      options.sketch.seed = 4;
      options.num_threads = threads;
      return RunSubspaceClustering(data.points, 4, options);
    };
    auto serial = run(1);
    ASSERT_TRUE(serial.ok()) << serial.status().ToString();
    for (int threads : {2, 8}) {
      auto threaded = run(threads);
      ASSERT_TRUE(threaded.ok());
      EXPECT_EQ(serial->labels, threaded->labels)
          << ScMethodName(method) << " nt=" << threads;
      EXPECT_TRUE(SparseExactlyEqual(serial->affinity, threaded->affinity))
          << ScMethodName(method) << " nt=" << threads;
    }
  }
}

TEST(SketchedRunTest, LandmarkAffinityRespectsTopQMemoryBound) {
  // The sparsified landmark affinity may hold at most 2 N q entries (each
  // point emits q one-directional picks, symmetrized) — the O(N q) memory
  // contract that replaces the dense N x N graph.
  const Dataset data = EasySubspaces(4, 60, 41);
  const int64_t n = data.points.cols();
  ScPipelineOptions options;
  options.method = ScMethod::kSscOmp;
  options.central = CentralPath::kSketched;
  options.sketch.dim = 48;
  const int64_t q = 4;
  options.sketch_top_q = q;
  auto result = RunSubspaceClustering(data.points, 4, options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_LE(result->affinity.nnz(), 2 * n * q);
  EXPECT_GT(result->affinity.nnz(), 0);
}

TEST(SketchedRunTest, EndToEndFederatedRoundWithFaultsAndDefense) {
  // The full one-shot protocol over the sketched engine, under injected
  // faults with the Byzantine defense on: the round must complete, journal
  // the sketched dispatch, and still recover the clusters.
  SyntheticOptions synth;
  synth.ambient_dim = 24;
  synth.subspace_dim = 3;
  synth.num_subspaces = 4;
  synth.points_per_subspace = 60;
  synth.seed = 43;
  auto data = GenerateUnionOfSubspaces(synth);
  ASSERT_TRUE(data.ok());
  PartitionOptions partition;
  partition.num_devices = 16;
  partition.clusters_per_device = 2;
  partition.seed = 77;
  auto fed = PartitionAcrossDevices(*data, partition);
  ASSERT_TRUE(fed.ok());

  FedScOptions options;
  options.central = CentralPath::kSketched;
  options.central_sketch.dim = 20;
  options.num_threads = 2;
  options.faults.dropout_rate = 0.15;
  options.faults.transient_rate = 0.2;
  options.faults.seed = 0xFA17;
  options.retry.max_attempts = 3;
  options.quorum = 0.5;
  options.defense.enabled = true;

  EnableJournal(true);
  ResetJournal();
  auto result = RunFedSc(*fed, 4, options);
  const std::vector<JournalEvent> journal = SnapshotJournal();
  EnableJournal(false);
  ASSERT_TRUE(result.ok()) << result.status().ToString();

  // The dispatch decision is part of the run ledger.
  bool saw_central_start = false;
  for (const JournalEvent& event : journal) {
    if (event.type != "central_start") continue;
    saw_central_start = true;
    bool saw_path = false;
    for (const auto& field : event.fields) {
      if (field.first == "central_path") {
        saw_path = true;
        EXPECT_EQ(field.second, "\"sketched\"");
      }
    }
    EXPECT_TRUE(saw_path);
  }
  EXPECT_TRUE(saw_central_start);

  // Quality over the covered points (failed devices carry the sentinel).
  std::vector<int64_t> truth;
  std::vector<int64_t> predicted;
  for (size_t i = 0; i < result->global_labels.size(); ++i) {
    if (result->global_labels[i] == FedScResult::kFailedDeviceLabel) continue;
    truth.push_back(data->labels[i]);
    predicted.push_back(result->global_labels[i]);
  }
  ASSERT_FALSE(truth.empty());
  EXPECT_GE(ClusteringAccuracy(truth, predicted), 80.0);
}

}  // namespace
}  // namespace fedsc
