#include <algorithm>
#include <cmath>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "linalg/blas.h"
#include "linalg/eig.h"
#include "linalg/lanczos.h"
#include "linalg/matrix.h"
#include "linalg/sparse.h"

namespace fedsc {
namespace {

TEST(SparseTest, FromTripletsSumsDuplicatesAndDropsZeros) {
  const SparseMatrix m = SparseMatrix::FromTriplets(
      3, 3, {{0, 1, 2.0}, {0, 1, 3.0}, {2, 2, 0.0}, {1, 0, -1.0}});
  EXPECT_EQ(m.nnz(), 2);
  const Matrix dense = m.ToDense();
  EXPECT_EQ(dense(0, 1), 5.0);
  EXPECT_EQ(dense(1, 0), -1.0);
  EXPECT_EQ(dense(2, 2), 0.0);
}

TEST(SparseTest, CancellingDuplicatesVanish) {
  const SparseMatrix m =
      SparseMatrix::FromTriplets(2, 2, {{0, 0, 1.0}, {0, 0, -1.0}});
  EXPECT_EQ(m.nnz(), 0);
}

TEST(SparseTest, MultiplyMatchesDense) {
  Rng rng(3);
  std::vector<Triplet> triplets;
  for (int i = 0; i < 40; ++i) {
    triplets.push_back({rng.UniformInt(10), rng.UniformInt(8),
                        rng.Gaussian()});
  }
  const SparseMatrix m = SparseMatrix::FromTriplets(10, 8, triplets);
  const Matrix dense = m.ToDense();
  Vector x(8);
  for (auto& v : x) v = rng.Gaussian();
  const Vector sparse_result = m.Multiply(x);
  const Vector dense_result = Gemv(Trans::kNo, dense, x);
  for (int64_t i = 0; i < 10; ++i) {
    EXPECT_NEAR(sparse_result[static_cast<size_t>(i)],
                dense_result[static_cast<size_t>(i)], 1e-12);
  }
}

TEST(SparseTest, TransposedMatchesDense) {
  const SparseMatrix m = SparseMatrix::FromTriplets(
      2, 3, {{0, 2, 5.0}, {1, 0, 1.0}, {1, 2, -2.0}});
  EXPECT_TRUE(AllClose(m.Transposed().ToDense(),
                       m.ToDense().Transposed(), 0.0));
}

TEST(SparseTest, PlusTransposedSymmetrizes) {
  const SparseMatrix m =
      SparseMatrix::FromTriplets(3, 3, {{0, 1, 2.0}, {1, 0, 1.0}});
  const Matrix w = m.PlusTransposed().ToDense();
  EXPECT_EQ(w(0, 1), 3.0);
  EXPECT_EQ(w(1, 0), 3.0);
  EXPECT_TRUE(AllClose(w, w.Transposed(), 0.0));
}

TEST(SparseTest, RowSums) {
  const SparseMatrix m = SparseMatrix::FromTriplets(
      2, 2, {{0, 0, 1.0}, {0, 1, 2.0}, {1, 1, 4.0}});
  const Vector sums = m.RowSums();
  EXPECT_EQ(sums[0], 3.0);
  EXPECT_EQ(sums[1], 4.0);
}

TEST(SparseTest, SparsifyDense) {
  Matrix dense(2, 2);
  dense(0, 0) = 0.5;
  dense(1, 1) = 1e-12;
  const SparseMatrix m = SparsifyDense(dense, 1e-9);
  EXPECT_EQ(m.nnz(), 1);
}

TEST(SparseDeathTest, OutOfRangeTripletDies) {
  EXPECT_DEATH(SparseMatrix::FromTriplets(2, 2, {{2, 0, 1.0}}), "triplet");
}

class LanczosTest : public ::testing::TestWithParam<int64_t> {};

TEST_P(LanczosTest, MatchesDenseEigOnRandomSymmetric) {
  const int64_t n = 60;
  const int64_t k = GetParam();
  Rng rng(4000 + k);
  Matrix a(n, n);
  for (int64_t j = 0; j < n; ++j) {
    for (int64_t i = 0; i <= j; ++i) {
      const double v = rng.Gaussian();
      a(i, j) = v;
      a(j, i) = v;
    }
  }
  auto dense = SymmetricEigen(a);
  ASSERT_TRUE(dense.ok());

  const SymmetricOperator apply = [&a, n](const double* x, double* y) {
    Gemv(Trans::kNo, 1.0, a, x, 0.0, y);
  };
  auto lanczos = LanczosLargest(apply, n, k);
  ASSERT_TRUE(lanczos.ok()) << lanczos.status().ToString();
  ASSERT_EQ(static_cast<int64_t>(lanczos->values.size()), k);
  for (int64_t i = 0; i < k; ++i) {
    EXPECT_NEAR(lanczos->values[static_cast<size_t>(i)],
                dense->values[static_cast<size_t>(n - 1 - i)], 1e-6);
    // Residual check: ||A v - lambda v|| small.
    Vector av(static_cast<size_t>(n));
    apply(lanczos->vectors.ColData(i), av.data());
    Axpy(-lanczos->values[static_cast<size_t>(i)],
         lanczos->vectors.ColData(i), av.data(), n);
    EXPECT_LT(Norm2(av.data(), n), 1e-5);
  }
}

INSTANTIATE_TEST_SUITE_P(TopK, LanczosTest, ::testing::Values<int64_t>(1, 3,
                                                                       8));

TEST(LanczosTest, BlockDiagonalWithRepeatedEigenvalues) {
  // Two disconnected blocks, each a path graph: the adjacency has repeated
  // extreme eigenvalues, which requires the restart-on-breakdown path.
  const int64_t n = 40;
  std::vector<Triplet> triplets;
  for (int64_t b = 0; b < 2; ++b) {
    const int64_t offset = b * (n / 2);
    for (int64_t i = 0; i + 1 < n / 2; ++i) {
      triplets.push_back({offset + i, offset + i + 1, 1.0});
      triplets.push_back({offset + i + 1, offset + i, 1.0});
    }
  }
  const SparseMatrix m = SparseMatrix::FromTriplets(n, n, triplets);
  const SymmetricOperator apply = [&m](const double* x, double* y) {
    m.Multiply(x, y);
  };
  auto lanczos = LanczosLargest(apply, n, 4);
  ASSERT_TRUE(lanczos.ok());
  auto dense = SymmetricEigen(m.ToDense());
  ASSERT_TRUE(dense.ok());
  for (int64_t i = 0; i < 4; ++i) {
    EXPECT_NEAR(lanczos->values[static_cast<size_t>(i)],
                dense->values[static_cast<size_t>(n - 1 - i)], 1e-6);
  }
}

TEST(LanczosTest, ExactWhenKEqualsDim) {
  const int64_t n = 12;
  Rng rng(5);
  Matrix a(n, n);
  for (int64_t j = 0; j < n; ++j) {
    for (int64_t i = 0; i <= j; ++i) {
      const double v = rng.Gaussian();
      a(i, j) = v;
      a(j, i) = v;
    }
  }
  const SymmetricOperator apply = [&a, n](const double* x, double* y) {
    Gemv(Trans::kNo, 1.0, a, x, 0.0, y);
  };
  auto lanczos = LanczosLargest(apply, n, n);
  ASSERT_TRUE(lanczos.ok());
  auto dense = SymmetricEigen(a);
  ASSERT_TRUE(dense.ok());
  for (int64_t i = 0; i < n; ++i) {
    EXPECT_NEAR(lanczos->values[static_cast<size_t>(i)],
                dense->values[static_cast<size_t>(n - 1 - i)], 1e-8);
  }
}

TEST(LanczosTest, RejectsBadArguments) {
  const SymmetricOperator noop = [](const double*, double*) {};
  EXPECT_FALSE(LanczosLargest(noop, 0, 1).ok());
  EXPECT_FALSE(LanczosLargest(noop, 5, 0).ok());
  EXPECT_FALSE(LanczosLargest(noop, 5, 6).ok());
}

TEST(SubspaceIterationTest, MatchesDenseEigOnRandomSymmetric) {
  const int64_t n = 50;
  Rng rng(6001);
  Matrix a(n, n);
  for (int64_t j = 0; j < n; ++j) {
    for (int64_t i = 0; i <= j; ++i) {
      const double v = rng.Gaussian();
      a(i, j) = v;
      a(j, i) = v;
    }
  }
  const SymmetricOperator apply = [&a, n](const double* x, double* y) {
    Gemv(Trans::kNo, 1.0, a, x, 0.0, y);
  };
  auto dense = SymmetricEigen(a);
  ASSERT_TRUE(dense.ok());
  SubspaceIterationOptions options;
  options.shift = 3.0 * std::sqrt(static_cast<double>(n));  // dominate |min|
  auto iter = SubspaceIterationLargest(apply, n, 5, options);
  ASSERT_TRUE(iter.ok()) << iter.status().ToString();
  for (int64_t i = 0; i < 5; ++i) {
    EXPECT_NEAR(iter->values[static_cast<size_t>(i)],
                dense->values[static_cast<size_t>(n - 1 - i)], 1e-5);
  }
}

TEST(SubspaceIterationTest, ResolvesHighlyDegenerateTopEigenvalue) {
  // 6 disconnected cliques: normalized adjacency has eigenvalue 1 with
  // multiplicity 6 — the case single-vector Lanczos cannot see.
  const int64_t blocks = 6;
  const int64_t block_size = 8;
  const int64_t n = blocks * block_size;
  std::vector<Triplet> triplets;
  for (int64_t b = 0; b < blocks; ++b) {
    for (int64_t i = 0; i < block_size; ++i) {
      for (int64_t j = 0; j < block_size; ++j) {
        if (i != j) {
          triplets.push_back({b * block_size + i, b * block_size + j, 1.0});
        }
      }
    }
  }
  const SparseMatrix w = SparseMatrix::FromTriplets(n, n, triplets);
  // Normalized adjacency = W / (block_size - 1).
  const double scale = 1.0 / static_cast<double>(block_size - 1);
  const SymmetricOperator apply = [&w, scale, n](const double* x, double* y) {
    w.Multiply(x, y);
    Scal(scale, y, n);
  };
  SubspaceIterationOptions options;
  options.shift = 1.0;
  auto iter = SubspaceIterationLargest(apply, n, blocks, options);
  ASSERT_TRUE(iter.ok());
  for (int64_t i = 0; i < blocks; ++i) {
    EXPECT_NEAR(iter->values[static_cast<size_t>(i)], 1.0, 1e-8);
  }
  // The recovered subspace spans the block indicators: applying the operator
  // leaves each eigenvector invariant.
  for (int64_t i = 0; i < blocks; ++i) {
    Vector av(static_cast<size_t>(n));
    apply(iter->vectors.ColData(i), av.data());
    Axpy(-1.0, iter->vectors.ColData(i), av.data(), n);
    EXPECT_LT(Norm2(av.data(), n), 1e-6);
  }
}

TEST(SubspaceIterationTest, RejectsBadArguments) {
  const SymmetricOperator noop = [](const double*, double*) {};
  EXPECT_FALSE(SubspaceIterationLargest(noop, 0, 1).ok());
  EXPECT_FALSE(SubspaceIterationLargest(noop, 5, 0).ok());
  EXPECT_FALSE(SubspaceIterationLargest(noop, 5, 6).ok());
}

}  // namespace
}  // namespace fedsc
