#include <algorithm>
#include <cmath>
#include <utility>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "linalg/blas.h"
#include "linalg/eig.h"
#include "linalg/svd.h"

namespace fedsc {
namespace {

Matrix RandomMatrix(int64_t rows, int64_t cols, Rng* rng) {
  Matrix m(rows, cols);
  for (int64_t j = 0; j < cols; ++j) {
    for (int64_t i = 0; i < rows; ++i) m(i, j) = rng->Gaussian();
  }
  return m;
}

Matrix Reconstruct(const SvdResult& svd) {
  Matrix us = svd.u;
  for (int64_t j = 0; j < us.cols(); ++j) {
    Scal(svd.s[static_cast<size_t>(j)], us.ColData(j), us.rows());
  }
  return MatMulNT(us, svd.v);
}

class SvdShapeTest
    : public ::testing::TestWithParam<std::pair<int64_t, int64_t>> {};

TEST_P(SvdShapeTest, ReconstructsWithOrthonormalFactors) {
  const auto [rows, cols] = GetParam();
  Rng rng(1000 + rows * 17 + cols);
  const Matrix a = RandomMatrix(rows, cols, &rng);
  auto svd = JacobiSvd(a);
  ASSERT_TRUE(svd.ok()) << svd.status().ToString();
  const int64_t k = std::min(rows, cols);
  ASSERT_EQ(static_cast<int64_t>(svd->s.size()), k);
  EXPECT_EQ(svd->u.rows(), rows);
  EXPECT_EQ(svd->v.rows(), cols);

  // Descending singular values.
  for (size_t i = 1; i < svd->s.size(); ++i) {
    EXPECT_GE(svd->s[i - 1], svd->s[i]);
    EXPECT_GE(svd->s[i], 0.0);
  }
  // A = U diag(s) V^T.
  EXPECT_TRUE(AllClose(Reconstruct(*svd), a, 1e-9 * std::max(1.0, svd->s[0])));
  // Orthonormal factors (all singular values are positive for Gaussian a).
  EXPECT_TRUE(AllClose(Gram(svd->u), Matrix::Identity(k), 1e-10));
  EXPECT_TRUE(AllClose(Gram(svd->v), Matrix::Identity(k), 1e-10));
}

INSTANTIATE_TEST_SUITE_P(Shapes, SvdShapeTest,
                         ::testing::Values(std::pair<int64_t, int64_t>{1, 1},
                                           std::pair<int64_t, int64_t>{6, 6},
                                           std::pair<int64_t, int64_t>{20, 5},
                                           std::pair<int64_t, int64_t>{5, 20},
                                           std::pair<int64_t, int64_t>{40, 40},
                                           std::pair<int64_t, int64_t>{100,
                                                                       12}));

TEST(SvdTest, KnownDiagonal) {
  Matrix a(3, 3);
  a(0, 0) = 3.0;
  a(1, 1) = -5.0;
  a(2, 2) = 1.0;
  auto svd = JacobiSvd(a);
  ASSERT_TRUE(svd.ok());
  EXPECT_NEAR(svd->s[0], 5.0, 1e-12);
  EXPECT_NEAR(svd->s[1], 3.0, 1e-12);
  EXPECT_NEAR(svd->s[2], 1.0, 1e-12);
}

TEST(SvdTest, RankDeficientMatrix) {
  // Two identical columns: rank 1.
  const Matrix a = Matrix::FromColumns({{1, 2, 3}, {1, 2, 3}});
  auto svd = JacobiSvd(a);
  ASSERT_TRUE(svd.ok());
  EXPECT_NEAR(svd->s[1], 0.0, 1e-10);
  EXPECT_EQ(NumericalRank(svd->s, 1e-8), 1);
  EXPECT_TRUE(AllClose(Reconstruct(*svd), a, 1e-10));
}

TEST(SvdTest, EmptyFails) { EXPECT_FALSE(JacobiSvd(Matrix()).ok()); }

TEST(NumericalRankTest, Thresholding) {
  EXPECT_EQ(NumericalRank({10.0, 1.0, 1e-10}, 1e-8), 2);
  EXPECT_EQ(NumericalRank({10.0, 1.0, 1e-10}, 1e-12), 3);
  EXPECT_EQ(NumericalRank({}, 1e-8), 0);
  EXPECT_EQ(NumericalRank({0.0, 0.0}, 1e-8), 0);
}

TEST(PrincipalSubspaceTest, RecoversSpan) {
  Rng rng(23);
  // Points on a 3-dimensional subspace of R^10.
  const Matrix basis = RandomMatrix(10, 3, &rng);
  const Matrix coeffs = RandomMatrix(3, 30, &rng);
  const Matrix points = MatMul(basis, coeffs);
  auto u = PrincipalSubspace(points, 0, 1e-8);
  ASSERT_TRUE(u.ok());
  EXPECT_EQ(u->cols(), 3);
  // Projection of the points onto the basis reproduces them.
  const Matrix proj = MatMul(*u, MatMulTN(*u, points));
  EXPECT_TRUE(AllClose(proj, points, 1e-8 * points.MaxAbs()));
}

TEST(PrincipalSubspaceTest, FixedRankAndZeroMatrix) {
  Rng rng(29);
  const Matrix a = RandomMatrix(8, 5, &rng);
  auto u = PrincipalSubspace(a, 2);
  ASSERT_TRUE(u.ok());
  EXPECT_EQ(u->cols(), 2);
  EXPECT_FALSE(PrincipalSubspace(Matrix(4, 4), 0).ok());
}

TEST(EigTest, KnownTwoByTwo) {
  Matrix a(2, 2);
  a(0, 0) = 2.0;
  a(0, 1) = 1.0;
  a(1, 0) = 1.0;
  a(1, 1) = 2.0;
  auto eig = SymmetricEigen(a);
  ASSERT_TRUE(eig.ok());
  EXPECT_NEAR(eig->values[0], 1.0, 1e-12);
  EXPECT_NEAR(eig->values[1], 3.0, 1e-12);
}

class EigSizeTest : public ::testing::TestWithParam<int64_t> {};

TEST_P(EigSizeTest, DecomposesRandomSymmetric) {
  const int64_t n = GetParam();
  Rng rng(2000 + n);
  Matrix a = RandomMatrix(n, n, &rng);
  a += a.Transposed();  // symmetrize

  auto eig = SymmetricEigen(a);
  ASSERT_TRUE(eig.ok()) << eig.status().ToString();

  // Ascending eigenvalues.
  for (size_t i = 1; i < eig->values.size(); ++i) {
    EXPECT_LE(eig->values[i - 1], eig->values[i]);
  }
  // Orthonormal eigenvectors.
  EXPECT_TRUE(AllClose(Gram(eig->vectors), Matrix::Identity(n), 1e-9));
  // A V = V diag(values).
  const Matrix av = MatMul(a, eig->vectors);
  Matrix vd = eig->vectors;
  for (int64_t j = 0; j < n; ++j) {
    Scal(eig->values[static_cast<size_t>(j)], vd.ColData(j), n);
  }
  EXPECT_TRUE(AllClose(av, vd, 1e-8 * std::max(1.0, a.MaxAbs())));

  // Eigenvalues-only path agrees.
  auto values_only = SymmetricEigenvalues(a);
  ASSERT_TRUE(values_only.ok());
  for (size_t i = 0; i < eig->values.size(); ++i) {
    EXPECT_NEAR((*values_only)[i], eig->values[i], 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, EigSizeTest,
                         ::testing::Values<int64_t>(1, 2, 3, 10, 33, 80));

TEST(EigTest, TraceAndDeterminantInvariants) {
  Rng rng(31);
  Matrix a = RandomMatrix(6, 6, &rng);
  a += a.Transposed();
  auto eig = SymmetricEigen(a);
  ASSERT_TRUE(eig.ok());
  double trace = 0.0;
  for (int64_t i = 0; i < 6; ++i) trace += a(i, i);
  double eig_sum = 0.0;
  for (double v : eig->values) eig_sum += v;
  EXPECT_NEAR(trace, eig_sum, 1e-9);
}

TEST(EigTest, RejectsEmptyAndNonSquare) {
  EXPECT_FALSE(SymmetricEigen(Matrix()).ok());
  EXPECT_FALSE(SymmetricEigen(Matrix(2, 3)).ok());
  EXPECT_FALSE(SymmetricEigenvalues(Matrix(0, 0)).ok());
}

}  // namespace
}  // namespace fedsc
