#include <algorithm>
#include <cmath>
#include <utility>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "linalg/blas.h"
#include "linalg/eig.h"
#include "linalg/svd.h"

namespace fedsc {
namespace {

Matrix RandomMatrix(int64_t rows, int64_t cols, Rng* rng) {
  Matrix m(rows, cols);
  for (int64_t j = 0; j < cols; ++j) {
    for (int64_t i = 0; i < rows; ++i) m(i, j) = rng->Gaussian();
  }
  return m;
}

Matrix Reconstruct(const SvdResult& svd) {
  Matrix us = svd.u;
  for (int64_t j = 0; j < us.cols(); ++j) {
    Scal(svd.s[static_cast<size_t>(j)], us.ColData(j), us.rows());
  }
  return MatMulNT(us, svd.v);
}

class SvdShapeTest
    : public ::testing::TestWithParam<std::pair<int64_t, int64_t>> {};

TEST_P(SvdShapeTest, ReconstructsWithOrthonormalFactors) {
  const auto [rows, cols] = GetParam();
  Rng rng(1000 + rows * 17 + cols);
  const Matrix a = RandomMatrix(rows, cols, &rng);
  auto svd = JacobiSvd(a);
  ASSERT_TRUE(svd.ok()) << svd.status().ToString();
  const int64_t k = std::min(rows, cols);
  ASSERT_EQ(static_cast<int64_t>(svd->s.size()), k);
  EXPECT_EQ(svd->u.rows(), rows);
  EXPECT_EQ(svd->v.rows(), cols);

  // Descending singular values.
  for (size_t i = 1; i < svd->s.size(); ++i) {
    EXPECT_GE(svd->s[i - 1], svd->s[i]);
    EXPECT_GE(svd->s[i], 0.0);
  }
  // A = U diag(s) V^T.
  EXPECT_TRUE(AllClose(Reconstruct(*svd), a, 1e-9 * std::max(1.0, svd->s[0])));
  // Orthonormal factors (all singular values are positive for Gaussian a).
  EXPECT_TRUE(AllClose(Gram(svd->u), Matrix::Identity(k), 1e-10));
  EXPECT_TRUE(AllClose(Gram(svd->v), Matrix::Identity(k), 1e-10));
}

INSTANTIATE_TEST_SUITE_P(Shapes, SvdShapeTest,
                         ::testing::Values(std::pair<int64_t, int64_t>{1, 1},
                                           std::pair<int64_t, int64_t>{6, 6},
                                           std::pair<int64_t, int64_t>{20, 5},
                                           std::pair<int64_t, int64_t>{5, 20},
                                           std::pair<int64_t, int64_t>{40, 40},
                                           std::pair<int64_t, int64_t>{100,
                                                                       12}));

TEST(SvdTest, KnownDiagonal) {
  Matrix a(3, 3);
  a(0, 0) = 3.0;
  a(1, 1) = -5.0;
  a(2, 2) = 1.0;
  auto svd = JacobiSvd(a);
  ASSERT_TRUE(svd.ok());
  EXPECT_NEAR(svd->s[0], 5.0, 1e-12);
  EXPECT_NEAR(svd->s[1], 3.0, 1e-12);
  EXPECT_NEAR(svd->s[2], 1.0, 1e-12);
}

TEST(SvdTest, RankDeficientMatrix) {
  // Two identical columns: rank 1.
  const Matrix a = Matrix::FromColumns({{1, 2, 3}, {1, 2, 3}});
  auto svd = JacobiSvd(a);
  ASSERT_TRUE(svd.ok());
  EXPECT_NEAR(svd->s[1], 0.0, 1e-10);
  EXPECT_EQ(NumericalRank(svd->s, 1e-8), 1);
  EXPECT_TRUE(AllClose(Reconstruct(*svd), a, 1e-10));
}

TEST(SvdTest, EmptyFails) { EXPECT_FALSE(JacobiSvd(Matrix()).ok()); }

// --- QR-preconditioned vs. plain Jacobi (tentpole coverage) ---

// Largest principal angle between the spans of two orthonormal-column
// matrices, via the singular values of U1^T U2 (all cosines ~ 1 when the
// subspaces coincide). Returns the worst cosine.
double WorstPrincipalCosine(const Matrix& u1, const Matrix& u2) {
  auto svd = JacobiSvd(MatMulTN(u1, u2));
  EXPECT_TRUE(svd.ok());
  double worst = 1.0;
  for (double c : svd->s) worst = std::min(worst, c);
  return worst;
}

class SvdPrecondTest
    : public ::testing::TestWithParam<std::pair<int64_t, int64_t>> {};

TEST_P(SvdPrecondTest, MatchesPlainJacobi) {
  const auto [rows, cols] = GetParam();
  Rng rng(3000 + rows * 7 + cols);
  const Matrix a = RandomMatrix(rows, cols, &rng);
  SvdOptions plain;
  plain.precondition = SvdPrecondition::kNone;
  SvdOptions precond;
  precond.precondition = SvdPrecondition::kQr;
  auto sp = JacobiSvd(a, plain);
  auto sq = JacobiSvd(a, precond);
  ASSERT_TRUE(sp.ok()) << sp.status().ToString();
  ASSERT_TRUE(sq.ok()) << sq.status().ToString();

  // Singular values agree to 1e-10 (relative to the top one).
  const double scale = std::max(1.0, sp->s[0]);
  for (size_t i = 0; i < sp->s.size(); ++i) {
    EXPECT_NEAR(sp->s[i], sq->s[i], 1e-10 * scale) << "sigma " << i;
  }
  // The preconditioned factorization reconstructs with orthonormal factors.
  const int64_t k = std::min(rows, cols);
  EXPECT_TRUE(AllClose(Reconstruct(*sq), a, 1e-9 * scale));
  EXPECT_TRUE(AllClose(Gram(sq->u), Matrix::Identity(k), 1e-9));
  EXPECT_TRUE(AllClose(Gram(sq->v), Matrix::Identity(k), 1e-9));
  // Principal angles between the dominant singular subspaces vanish (use
  // the top half of the spectrum, where Gaussian singular values are well
  // separated from the tail).
  const int64_t r = std::max<int64_t>(1, k / 2);
  EXPECT_GT(WorstPrincipalCosine(sp->u.ColRange(0, r), sq->u.ColRange(0, r)),
            1.0 - 1e-8);
  EXPECT_GT(WorstPrincipalCosine(sp->v.ColRange(0, r), sq->v.ColRange(0, r)),
            1.0 - 1e-8);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, SvdPrecondTest,
    ::testing::Values(std::pair<int64_t, int64_t>{64, 8},
                      std::pair<int64_t, int64_t>{300, 10},
                      std::pair<int64_t, int64_t>{512, 32},
                      std::pair<int64_t, int64_t>{100, 50},   // mild aspect
                      std::pair<int64_t, int64_t>{8, 300}));  // wide input

TEST(SvdPrecondTest, AutoDispatchIsPureFunctionOfShape) {
  Rng rng(47);
  // Below the aspect/work thresholds kAuto must reproduce the plain bits.
  const Matrix small = RandomMatrix(100, 30, &rng);  // aspect 3.3 < 4
  SvdOptions plain;
  plain.precondition = SvdPrecondition::kNone;
  auto sa = JacobiSvd(small);
  auto sp = JacobiSvd(small, plain);
  ASSERT_TRUE(sa.ok() && sp.ok());
  for (size_t i = 0; i < sa->s.size(); ++i) ASSERT_EQ(sa->s[i], sp->s[i]);
  for (int64_t j = 0; j < sa->u.cols(); ++j) {
    for (int64_t i = 0; i < sa->u.rows(); ++i) {
      ASSERT_EQ(sa->u(i, j), sp->u(i, j));
    }
  }
  // Tall enough and big enough: kAuto must reproduce the preconditioned
  // bits.
  const Matrix tall = RandomMatrix(256, 16, &rng);  // aspect 16, work 4096
  ASSERT_GE(tall.rows(), kSvdPrecondMinAspect * tall.cols());
  ASSERT_GE(tall.rows() * tall.cols(), kSvdPrecondMinWork);
  SvdOptions precond;
  precond.precondition = SvdPrecondition::kQr;
  auto ta = JacobiSvd(tall);
  auto tq = JacobiSvd(tall, precond);
  ASSERT_TRUE(ta.ok() && tq.ok());
  for (size_t i = 0; i < ta->s.size(); ++i) ASSERT_EQ(ta->s[i], tq->s[i]);
  for (int64_t j = 0; j < ta->u.cols(); ++j) {
    for (int64_t i = 0; i < ta->u.rows(); ++i) {
      ASSERT_EQ(ta->u(i, j), tq->u(i, j));
    }
  }
}

TEST(SvdPrecondTest, RankDeficientTallMatrix) {
  Rng rng(53);
  // 200 x 12 of rank 4: preconditioned path must keep the exact-zero-U
  // convention for null directions.
  const Matrix basis = RandomMatrix(200, 4, &rng);
  const Matrix coeffs = RandomMatrix(4, 12, &rng);
  const Matrix a = MatMul(basis, coeffs);
  SvdOptions precond;
  precond.precondition = SvdPrecondition::kQr;
  auto svd = JacobiSvd(a, precond);
  ASSERT_TRUE(svd.ok());
  EXPECT_EQ(NumericalRank(svd->s, 1e-8), 4);
  EXPECT_TRUE(AllClose(Reconstruct(*svd), a, 1e-8 * svd->s[0]));
}

TEST(SvdPrecondTest, PrincipalSubspaceAcceptsOptions) {
  Rng rng(59);
  const Matrix basis = RandomMatrix(128, 3, &rng);
  const Matrix coeffs = RandomMatrix(3, 16, &rng);
  const Matrix points = MatMul(basis, coeffs);
  SvdOptions precond;
  precond.precondition = SvdPrecondition::kQr;
  auto u = PrincipalSubspace(points, 0, 1e-8, precond);
  ASSERT_TRUE(u.ok());
  EXPECT_EQ(u->cols(), 3);
  const Matrix proj = MatMul(*u, MatMulTN(*u, points));
  EXPECT_TRUE(AllClose(proj, points, 1e-8 * points.MaxAbs()));
}

TEST(NumericalRankTest, Thresholding) {
  EXPECT_EQ(NumericalRank({10.0, 1.0, 1e-10}, 1e-8), 2);
  EXPECT_EQ(NumericalRank({10.0, 1.0, 1e-10}, 1e-12), 3);
  EXPECT_EQ(NumericalRank({}, 1e-8), 0);
  EXPECT_EQ(NumericalRank({0.0, 0.0}, 1e-8), 0);
}

TEST(PrincipalSubspaceTest, RecoversSpan) {
  Rng rng(23);
  // Points on a 3-dimensional subspace of R^10.
  const Matrix basis = RandomMatrix(10, 3, &rng);
  const Matrix coeffs = RandomMatrix(3, 30, &rng);
  const Matrix points = MatMul(basis, coeffs);
  auto u = PrincipalSubspace(points, 0, 1e-8);
  ASSERT_TRUE(u.ok());
  EXPECT_EQ(u->cols(), 3);
  // Projection of the points onto the basis reproduces them.
  const Matrix proj = MatMul(*u, MatMulTN(*u, points));
  EXPECT_TRUE(AllClose(proj, points, 1e-8 * points.MaxAbs()));
}

TEST(PrincipalSubspaceTest, FixedRankAndZeroMatrix) {
  Rng rng(29);
  const Matrix a = RandomMatrix(8, 5, &rng);
  auto u = PrincipalSubspace(a, 2);
  ASSERT_TRUE(u.ok());
  EXPECT_EQ(u->cols(), 2);
  EXPECT_FALSE(PrincipalSubspace(Matrix(4, 4), 0).ok());
}

TEST(EigTest, KnownTwoByTwo) {
  Matrix a(2, 2);
  a(0, 0) = 2.0;
  a(0, 1) = 1.0;
  a(1, 0) = 1.0;
  a(1, 1) = 2.0;
  auto eig = SymmetricEigen(a);
  ASSERT_TRUE(eig.ok());
  EXPECT_NEAR(eig->values[0], 1.0, 1e-12);
  EXPECT_NEAR(eig->values[1], 3.0, 1e-12);
}

class EigSizeTest : public ::testing::TestWithParam<int64_t> {};

TEST_P(EigSizeTest, DecomposesRandomSymmetric) {
  const int64_t n = GetParam();
  Rng rng(2000 + n);
  Matrix a = RandomMatrix(n, n, &rng);
  a += a.Transposed();  // symmetrize

  auto eig = SymmetricEigen(a);
  ASSERT_TRUE(eig.ok()) << eig.status().ToString();

  // Ascending eigenvalues.
  for (size_t i = 1; i < eig->values.size(); ++i) {
    EXPECT_LE(eig->values[i - 1], eig->values[i]);
  }
  // Orthonormal eigenvectors.
  EXPECT_TRUE(AllClose(Gram(eig->vectors), Matrix::Identity(n), 1e-9));
  // A V = V diag(values).
  const Matrix av = MatMul(a, eig->vectors);
  Matrix vd = eig->vectors;
  for (int64_t j = 0; j < n; ++j) {
    Scal(eig->values[static_cast<size_t>(j)], vd.ColData(j), n);
  }
  EXPECT_TRUE(AllClose(av, vd, 1e-8 * std::max(1.0, a.MaxAbs())));

  // Eigenvalues-only path agrees.
  auto values_only = SymmetricEigenvalues(a);
  ASSERT_TRUE(values_only.ok());
  for (size_t i = 0; i < eig->values.size(); ++i) {
    EXPECT_NEAR((*values_only)[i], eig->values[i], 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, EigSizeTest,
                         ::testing::Values<int64_t>(1, 2, 3, 10, 33, 80));

TEST(EigTest, TraceAndDeterminantInvariants) {
  Rng rng(31);
  Matrix a = RandomMatrix(6, 6, &rng);
  a += a.Transposed();
  auto eig = SymmetricEigen(a);
  ASSERT_TRUE(eig.ok());
  double trace = 0.0;
  for (int64_t i = 0; i < 6; ++i) trace += a(i, i);
  double eig_sum = 0.0;
  for (double v : eig->values) eig_sum += v;
  EXPECT_NEAR(trace, eig_sum, 1e-9);
}

// --- Blocked vs. unblocked tridiagonalization (tentpole coverage) ---

class EigEngineTest : public ::testing::TestWithParam<int64_t> {};

TEST_P(EigEngineTest, BlockedAgreesWithUnblocked) {
  const int64_t n = GetParam();
  Rng rng(4000 + n);
  Matrix a = RandomMatrix(n, n, &rng);
  a += a.Transposed();
  EigOptions unblocked;
  unblocked.variant = EigVariant::kUnblocked;
  EigOptions blocked;
  blocked.variant = EigVariant::kBlocked;
  auto eu = SymmetricEigen(a, unblocked);
  auto eb = SymmetricEigen(a, blocked);
  ASSERT_TRUE(eu.ok()) << eu.status().ToString();
  ASSERT_TRUE(eb.ok()) << eb.status().ToString();

  const double scale = std::max(1.0, a.MaxAbs());
  for (size_t i = 0; i < eu->values.size(); ++i) {
    EXPECT_NEAR(eu->values[i], eb->values[i], 1e-9 * scale) << "lambda " << i;
  }
  // The blocked engine's eigenvectors are orthonormal and satisfy
  // A V = V diag(values) on their own (eigenvector columns can differ from
  // the unblocked ones by sign / rotation inside degenerate clusters, so
  // compare against the residual, not column-by-column).
  EXPECT_TRUE(AllClose(Gram(eb->vectors), Matrix::Identity(n), 1e-9));
  const Matrix av = MatMul(a, eb->vectors);
  Matrix vd = eb->vectors;
  for (int64_t j = 0; j < n; ++j) {
    Scal(eb->values[static_cast<size_t>(j)], vd.ColData(j), n);
  }
  EXPECT_TRUE(AllClose(av, vd, 1e-8 * scale));

  // Eigenvalues-only path agrees with the full decomposition per engine.
  auto vb = SymmetricEigenvalues(a, blocked);
  ASSERT_TRUE(vb.ok());
  for (size_t i = 0; i < vb->size(); ++i) {
    ASSERT_EQ((*vb)[i], eb->values[i]);
  }
}

// 3 = smallest order with a reflector, 33/65 = panel boundary stragglers,
// 130 = above the kAuto cutoff.
INSTANTIATE_TEST_SUITE_P(Sizes, EigEngineTest,
                         ::testing::Values<int64_t>(3, 4, 33, 65, 130));

TEST(EigEngineTest, AutoDispatchIsPureFunctionOfShape) {
  Rng rng(61);
  // Below the cutoff kAuto runs tred2 bit-for-bit.
  {
    const int64_t n = 40;
    Matrix a = RandomMatrix(n, n, &rng);
    a += a.Transposed();
    EigOptions pinned;
    pinned.variant = EigVariant::kUnblocked;
    auto ea = SymmetricEigen(a);
    auto ep = SymmetricEigen(a, pinned);
    ASSERT_TRUE(ea.ok() && ep.ok());
    for (int64_t j = 0; j < n; ++j) {
      for (int64_t i = 0; i < n; ++i) {
        ASSERT_EQ(ea->vectors(i, j), ep->vectors(i, j));
      }
    }
  }
  // At the cutoff kAuto runs the blocked engine bit-for-bit.
  {
    const int64_t n = kBlockedEigCutoff;
    Matrix a = RandomMatrix(n, n, &rng);
    a += a.Transposed();
    EigOptions blocked;
    blocked.variant = EigVariant::kBlocked;
    auto ea = SymmetricEigen(a);
    auto eb = SymmetricEigen(a, blocked);
    ASSERT_TRUE(ea.ok() && eb.ok());
    for (int64_t j = 0; j < n; ++j) {
      for (int64_t i = 0; i < n; ++i) {
        ASSERT_EQ(ea->vectors(i, j), eb->vectors(i, j));
      }
    }
  }
}

TEST(EigEngineTest, BlockedReadsOnlyLowerTriangle) {
  Rng rng(67);
  const int64_t n = 50;
  Matrix a = RandomMatrix(n, n, &rng);
  a += a.Transposed();
  Matrix garbage_upper = a;
  for (int64_t j = 1; j < n; ++j) {
    for (int64_t i = 0; i < j; ++i) garbage_upper(i, j) = rng.Gaussian();
  }
  EigOptions blocked;
  blocked.variant = EigVariant::kBlocked;
  auto clean = SymmetricEigen(a, blocked);
  auto dirty = SymmetricEigen(garbage_upper, blocked);
  ASSERT_TRUE(clean.ok() && dirty.ok());
  for (size_t i = 0; i < clean->values.size(); ++i) {
    ASSERT_EQ(clean->values[i], dirty->values[i]);
  }
}

TEST(EigTest, RejectsEmptyAndNonSquare) {
  EXPECT_FALSE(SymmetricEigen(Matrix()).ok());
  EXPECT_FALSE(SymmetricEigen(Matrix(2, 3)).ok());
  EXPECT_FALSE(SymmetricEigenvalues(Matrix(0, 0)).ok());
}

}  // namespace
}  // namespace fedsc
