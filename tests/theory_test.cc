#include <cmath>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/theory.h"
#include "fed/partition.h"
#include "data/synthetic.h"
#include "linalg/blas.h"

namespace fedsc {
namespace {

Matrix BasisFromColumns(std::vector<Vector> cols) {
  return Matrix::FromColumns(cols);
}

TEST(CanonicalAnglesTest, IdenticalSubspaces) {
  Rng rng(1);
  const Matrix u = RandomOrthonormalBasis(10, 3, &rng);
  auto cosines = CanonicalAngleCosines(u, u);
  ASSERT_TRUE(cosines.ok());
  for (double c : *cosines) EXPECT_NEAR(c, 1.0, 1e-10);
}

TEST(CanonicalAnglesTest, OrthogonalSubspaces) {
  const Matrix u1 = BasisFromColumns({{1, 0, 0, 0}, {0, 1, 0, 0}});
  const Matrix u2 = BasisFromColumns({{0, 0, 1, 0}, {0, 0, 0, 1}});
  auto cosines = CanonicalAngleCosines(u1, u2);
  ASSERT_TRUE(cosines.ok());
  for (double c : *cosines) EXPECT_NEAR(c, 0.0, 1e-12);
}

TEST(CanonicalAnglesTest, KnownAngle) {
  // Lines spanned by e1 and (cos t, sin t): single angle t.
  const double t = 0.3;
  const Matrix u1 = BasisFromColumns({{1, 0}});
  const Matrix u2 = BasisFromColumns({{std::cos(t), std::sin(t)}});
  auto cosines = CanonicalAngleCosines(u1, u2);
  ASSERT_TRUE(cosines.ok());
  ASSERT_EQ(cosines->size(), 1u);
  EXPECT_NEAR((*cosines)[0], std::cos(t), 1e-12);
}

TEST(SubspaceAffinityTest, RangesAndExtremes) {
  Rng rng(2);
  const Matrix u = RandomOrthonormalBasis(12, 4, &rng);
  auto self_aff = SubspaceAffinity(u, u);
  ASSERT_TRUE(self_aff.ok());
  EXPECT_NEAR(*self_aff, std::sqrt(4.0), 1e-9);  // sqrt(d) for identical

  const Matrix v = RandomOrthonormalBasis(12, 4, &rng);
  auto aff = SubspaceAffinity(u, v);
  ASSERT_TRUE(aff.ok());
  EXPECT_GE(*aff, 0.0);
  EXPECT_LE(*aff, std::sqrt(4.0) + 1e-9);
  // Symmetry.
  auto aff_rev = SubspaceAffinity(v, u);
  ASSERT_TRUE(aff_rev.ok());
  EXPECT_NEAR(*aff, *aff_rev, 1e-9);
}

TEST(SubspaceAffinityTest, Validation) {
  Rng rng(3);
  const Matrix u = RandomOrthonormalBasis(6, 2, &rng);
  const Matrix w = RandomOrthonormalBasis(8, 2, &rng);
  EXPECT_FALSE(SubspaceAffinity(u, w).ok());
  EXPECT_FALSE(SubspaceAffinity(u, Matrix(6, 0)).ok());
}

TEST(DualDirectionTest, SolvesSimpleLp) {
  // Dictionary = +-identity directions in R^2: the feasible set
  // {nu : ||X^T nu||_inf <= 1} is the unit square; maximizing <x, nu> with
  // x = (1, 0.5) picks the corner (1, 1).
  const Matrix dictionary = BasisFromColumns({{1, 0}, {0, 1}});
  auto nu = DualDirection({1.0, 0.5}, dictionary);
  ASSERT_TRUE(nu.ok());
  EXPECT_NEAR((*nu)[0], 1.0, 1e-4);
  EXPECT_NEAR((*nu)[1], 1.0, 1e-4);
}

TEST(DualDirectionTest, FeasibilityHolds) {
  Rng rng(4);
  const Matrix basis = RandomOrthonormalBasis(8, 3, &rng);
  Matrix coeffs(3, 10);
  for (int64_t j = 0; j < 10; ++j) {
    for (int64_t i = 0; i < 3; ++i) coeffs(i, j) = rng.Gaussian();
  }
  Matrix dictionary = MatMul(basis, coeffs);
  dictionary.NormalizeColumns();
  const Vector x = dictionary.Col(0);
  const Matrix rest = dictionary.ColRange(1, 10);
  auto nu = DualDirection(x, rest);
  ASSERT_TRUE(nu.ok());
  const Vector constraint = Gemv(Trans::kTrans, rest, *nu);
  for (double v : constraint) EXPECT_LE(std::fabs(v), 1.0 + 1e-4);
}

TEST(IncoherenceTest, OrthogonalSubspacesHaveZeroIncoherence) {
  // Points in span(e1, e2); "others" in span(e3, e4): Example 1 says mu = 0.
  Rng rng(5);
  Matrix xl(6, 8);
  Matrix others(6, 8);
  for (int64_t j = 0; j < 8; ++j) {
    xl(0, j) = rng.Gaussian();
    xl(1, j) = rng.Gaussian();
    others(2, j) = rng.Gaussian();
    others(3, j) = rng.Gaussian();
  }
  xl.NormalizeColumns();
  others.NormalizeColumns();
  Matrix basis(6, 2);
  basis(0, 0) = 1.0;
  basis(1, 1) = 1.0;
  auto mu = SubspaceIncoherence(xl, others, basis);
  ASSERT_TRUE(mu.ok()) << mu.status().ToString();
  EXPECT_NEAR(*mu, 0.0, 1e-6);
}

TEST(IncoherenceTest, CloseSubspacesHaveLargeIncoherence) {
  // Others identical to X_l's subspace: incoherence should be large.
  Rng rng(6);
  Matrix xl(6, 10);
  Matrix others(6, 10);
  for (int64_t j = 0; j < 10; ++j) {
    xl(0, j) = rng.Gaussian();
    xl(1, j) = rng.Gaussian();
    others(0, j) = rng.Gaussian();
    others(1, j) = rng.Gaussian();
  }
  xl.NormalizeColumns();
  others.NormalizeColumns();
  Matrix basis(6, 2);
  basis(0, 0) = 1.0;
  basis(1, 1) = 1.0;
  auto mu = SubspaceIncoherence(xl, others, basis);
  ASSERT_TRUE(mu.ok());
  EXPECT_GT(*mu, 0.3);
  EXPECT_FALSE(SubspaceIncoherence(xl.ColRange(0, 1), others, basis).ok());
}

TEST(InradiusTest, CrossPolytope) {
  // X = [e1 ... ed]: P(X) is the cross-polytope, inradius 1/sqrt(d).
  for (int64_t d : {2, 3, 5}) {
    const Matrix x = Matrix::Identity(d);
    auto r = InradiusEstimate(x);
    ASSERT_TRUE(r.ok());
    EXPECT_NEAR(*r, 1.0 / std::sqrt(static_cast<double>(d)), 2e-2);
  }
}

TEST(InradiusTest, WellSpreadBeatsSkewed) {
  Rng rng(7);
  // Well-spread: many uniform directions on the circle. Skewed: directions
  // bunched in a narrow cone.
  const int64_t m = 40;
  Matrix spread(2, m), skewed(2, m);
  for (int64_t j = 0; j < m; ++j) {
    const double a = 2.0 * M_PI * rng.Uniform();
    spread(0, j) = std::cos(a);
    spread(1, j) = std::sin(a);
    const double b = 0.2 * rng.Uniform();
    skewed(0, j) = std::cos(b);
    skewed(1, j) = std::sin(b);
  }
  auto r_spread = InradiusEstimate(spread);
  auto r_skewed = InradiusEstimate(skewed);
  ASSERT_TRUE(r_spread.ok());
  ASSERT_TRUE(r_skewed.ok());
  EXPECT_GT(*r_spread, *r_skewed + 0.2);
  EXPECT_FALSE(InradiusEstimate(Matrix(3, 0)).ok());
}

TEST(ActiveSetsTest, ReflectsCoResidence) {
  // 3 clusters; device 0 holds {0,1}, device 1 holds {1,2}.
  Dataset data;
  data.num_clusters = 3;
  data.points = Matrix(2, 6);
  data.labels = {0, 0, 1, 1, 2, 2};
  FederatedDataset fed;
  fed.num_clusters = 3;
  fed.total_points = 6;
  fed.ambient_dim = 2;
  fed.points = {Matrix(2, 4), Matrix(2, 4)};
  fed.labels = {{0, 0, 1, 1}, {1, 1, 2, 2}};
  fed.global_index = {{0, 1, 2, 3}, {2, 3, 4, 5}};  // overlap is irrelevant
  const auto active = ComputeActiveSets(fed);
  ASSERT_EQ(active.size(), 3u);
  EXPECT_EQ(active[0], (std::vector<int64_t>{1}));
  EXPECT_EQ(active[1], (std::vector<int64_t>{0, 2}));
  EXPECT_EQ(active[2], (std::vector<int64_t>{1}));
}

TEST(CorollaryBoundsTest, HeterogeneityRelaxesTheBounds) {
  // Corollary 1/2: smaller Z' (more heterogeneity) => higher affinity bound
  // (weaker requirement), in the regime the paper discusses (small d).
  const double d = 5, L = 20, r_prime = 5;
  const double loose_ssc = Corollary1AffinityBound(d, 50, L, r_prime);
  const double tight_ssc = Corollary1AffinityBound(d, 5000, L, r_prime);
  EXPECT_GT(loose_ssc, 0.0);
  EXPECT_GT(tight_ssc, 0.0);

  const double loose_tsc = Corollary2AffinityBound(d, 50, L, r_prime);
  const double tight_tsc = Corollary2AffinityBound(d, 5000, L, r_prime);
  EXPECT_GT(loose_tsc, tight_tsc);

  // Degenerate parameters yield 0.
  EXPECT_EQ(Corollary1AffinityBound(5, 5, L, r_prime), 0.0);
  EXPECT_EQ(Corollary2AffinityBound(0, 50, L, r_prime), 0.0);
}

TEST(CorollaryBoundsTest, BoundGrowsWithDimension) {
  EXPECT_GT(Corollary2AffinityBound(16, 100, 20, 5),
            Corollary2AffinityBound(4, 100, 20, 5));
}

TEST(TheoremCheckTest, WellSeparatedFederationPassesDeterministicSide) {
  SyntheticOptions synth;
  synth.ambient_dim = 30;
  synth.subspace_dim = 3;
  synth.num_subspaces = 4;
  synth.points_per_subspace = 40;
  synth.seed = 91;
  auto data = GenerateUnionOfSubspaces(synth);
  ASSERT_TRUE(data.ok());
  PartitionOptions partition;
  partition.num_devices = 30;
  partition.clusters_per_device = 2;
  partition.seed = 92;
  auto fed = PartitionAcrossDevices(*data, partition);
  ASSERT_TRUE(fed.ok());

  TheoremCheckOptions options;
  options.inradius.restarts = 24;  // keep the diagnostic quick
  auto check = CheckTheoremConditions(*data, *fed, options);
  ASSERT_TRUE(check.ok()) << check.status().ToString();
  ASSERT_EQ(check->inradius.size(), 4u);
  for (int64_t l = 0; l < 4; ++l) {
    EXPECT_GT(check->inradius[static_cast<size_t>(l)], 0.0);
    EXPECT_TRUE(check->deterministic_ok[static_cast<size_t>(l)])
        << "cluster " << l << ": r=" << check->inradius[static_cast<size_t>(l)]
        << " mu=" << check->active_incoherence[static_cast<size_t>(l)];
  }
  EXPECT_GT(check->max_affinity, 0.0);
  EXPECT_GT(check->corollary2_bound, 0.0);
}

TEST(TheoremCheckTest, Validation) {
  Dataset no_bases;
  no_bases.num_clusters = 2;
  no_bases.points = Matrix(4, 4);
  no_bases.labels = {0, 0, 1, 1};
  FederatedDataset fed;
  fed.num_clusters = 2;
  EXPECT_FALSE(CheckTheoremConditions(no_bases, fed).ok());
}

}  // namespace
}  // namespace fedsc
