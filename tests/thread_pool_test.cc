// Unit tests for the worker pool and its deterministic parallel-for
// helpers, including a regression test for the Schedule-after-Wait
// lost-wakeup window (two controllers interleaving on one pool).

#include "common/thread_pool.h"

#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <numeric>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace fedsc {
namespace {

TEST(ThreadPoolTest, RunsEveryScheduledTask) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  for (int i = 0; i < 100; ++i) {
    pool.Schedule([&count] { count.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPoolTest, ReusableAfterWait) {
  ThreadPool pool(2);
  std::atomic<int> count{0};
  for (int batch = 0; batch < 5; ++batch) {
    for (int i = 0; i < 20; ++i) {
      pool.Schedule([&count] { count.fetch_add(1); });
    }
    pool.Wait();
    EXPECT_EQ(count.load(), (batch + 1) * 20);
  }
}

TEST(ThreadPoolTest, WaitWithNothingScheduledReturnsImmediately) {
  ThreadPool pool(3);
  pool.Wait();
  pool.Wait();
  SUCCEED();
}

TEST(ThreadPoolTest, DestructionDrainsQueuedWork) {
  std::atomic<int> count{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 200; ++i) {
      pool.Schedule([&count] {
        std::this_thread::sleep_for(std::chrono::microseconds(10));
        count.fetch_add(1);
      });
    }
    // No Wait(): the destructor must drain the queue before joining.
  }
  EXPECT_EQ(count.load(), 200);
}

TEST(ThreadPoolTest, AtLeastOneWorkerEvenWhenAskedForZero) {
  ThreadPool pool(0);
  EXPECT_GE(pool.num_threads(), 1);
  std::atomic<int> count{0};
  pool.Schedule([&count] { count.fetch_add(1); });
  pool.Wait();
  EXPECT_EQ(count.load(), 1);
}

// Regression test for the lost-wakeup window in the old in_flight_ == 0
// handshake: with two controllers interleaving Schedule and Wait on the
// same pool, a waiter could observe in_flight_ pushed back above zero by
// the other controller and sleep past its own batch's completion. The
// sequence-tracking Wait must guarantee: every task scheduled by this
// thread before its Wait() call has run once Wait() returns.
TEST(ThreadPoolTest, InterleavedScheduleWaitFromTwoControllers) {
  ThreadPool pool(4);
  constexpr int kIterations = 400;
  constexpr int kTasksPerBatch = 8;

  auto controller = [&pool](std::atomic<int>* count) {
    int scheduled = 0;
    for (int iter = 0; iter < kIterations; ++iter) {
      for (int t = 0; t < kTasksPerBatch; ++t) {
        pool.Schedule([count] { count->fetch_add(1); });
        ++scheduled;
      }
      pool.Wait();
      // Everything this controller scheduled before Wait() must be done;
      // the other controller's concurrent batches must not extend or
      // starve this wait.
      ASSERT_GE(count->load(), scheduled);
    }
  };

  std::atomic<int> count_a{0};
  std::atomic<int> count_b{0};
  std::thread a(controller, &count_a);
  std::thread b(controller, &count_b);
  a.join();
  b.join();
  EXPECT_EQ(count_a.load(), kIterations * kTasksPerBatch);
  EXPECT_EQ(count_b.load(), kIterations * kTasksPerBatch);
}

// Regression test for the premature-return window of the epoch-counter
// Wait that replaced the in_flight_ handshake: it counted completions of
// *any* task, so a short task scheduled after the waiter's snapshot could
// push the completion count past the target while a long pre-snapshot task
// was still running, and Wait() returned early. Per-task sequence tracking
// must keep the waiter asleep until its own (earlier) task finishes, no
// matter how many later tasks complete first.
TEST(ThreadPoolTest, LaterFastCompletionsCannotSatisfyEarlierWait) {
  ThreadPool pool(4);
  std::atomic<bool> release_slow{false};
  std::atomic<bool> slow_done{false};
  std::atomic<int> fast_done{0};

  pool.Schedule([&release_slow, &slow_done] {
    while (!release_slow.load()) std::this_thread::yield();
    slow_done.store(true);
  });

  std::thread waiter([&pool, &slow_done] {
    pool.Wait();
    // The slow task was scheduled before this thread existed, so every
    // possible snapshot covers it: Wait() must not return on the strength
    // of the fast tasks alone.
    EXPECT_TRUE(slow_done.load());
  });

  // Give the waiter time to block, then run a burst of tasks scheduled
  // after its snapshot to completion while the slow task is still held.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  for (int i = 0; i < 64; ++i) {
    pool.Schedule([&fast_done] { fast_done.fetch_add(1); });
  }
  while (fast_done.load() < 64) std::this_thread::yield();
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  release_slow.store(true);
  waiter.join();
  pool.Wait();
  EXPECT_TRUE(slow_done.load());
  EXPECT_EQ(fast_done.load(), 64);
}

TEST(SharedThreadPoolTest, PersistentAndGrowsToLargestRequest) {
  ThreadPool& a = SharedThreadPool(2);
  ThreadPool& b = SharedThreadPool(5);
  EXPECT_EQ(&a, &b);
  EXPECT_GE(b.num_threads(), 5);
  // A smaller later request returns the same pool and never shrinks it.
  EXPECT_GE(SharedThreadPool(1).num_threads(), 5);
}

TEST(InThreadPoolWorkerTest, TrueOnlyInsideWorkers) {
  EXPECT_FALSE(InThreadPoolWorker());
  ThreadPool pool(2);
  std::atomic<bool> inside{false};
  pool.Schedule([&inside] { inside.store(InThreadPoolWorker()); });
  pool.Wait();
  EXPECT_TRUE(inside.load());
  EXPECT_FALSE(InThreadPoolWorker());
}

TEST(ParallelForTest, EmptyRangeRunsNothing) {
  std::atomic<int> count{0};
  ParallelFor(5, 5, 4, [&count](int64_t) { count.fetch_add(1); });
  ParallelFor(0, 0, 1, [&count](int64_t) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 0);
}

TEST(ParallelForTest, VisitsEveryIndexExactlyOnce) {
  constexpr int64_t kBegin = 3;
  constexpr int64_t kEnd = 1003;
  std::vector<std::atomic<int>> visits(kEnd - kBegin);
  ParallelFor(kBegin, kEnd, 4, [&visits, kBegin = kBegin](int64_t i) {
    visits[static_cast<size_t>(i - kBegin)].fetch_add(1);
  });
  for (const auto& v : visits) EXPECT_EQ(v.load(), 1);
}

TEST(ParallelForTest, RangeSmallerThanThreadCount) {
  std::vector<std::atomic<int>> visits(3);
  ParallelFor(0, 3, 16, [&visits](int64_t i) {
    visits[static_cast<size_t>(i)].fetch_add(1);
  });
  for (const auto& v : visits) EXPECT_EQ(v.load(), 1);
}

TEST(ParallelForTest, SingleThreadRunsInline) {
  // num_threads <= 1 must run on the calling thread (no pool spawned).
  const auto caller = std::this_thread::get_id();
  std::vector<std::thread::id> seen(4);
  ParallelFor(0, 4, 1, [&seen, caller](int64_t i) {
    seen[static_cast<size_t>(i)] = std::this_thread::get_id();
    EXPECT_EQ(std::this_thread::get_id(), caller);
  });
  for (const auto& id : seen) EXPECT_EQ(id, caller);
}

TEST(ParallelForTest, StressThousandsOfTinyTasks) {
  constexpr int64_t kCount = 20000;
  std::atomic<int64_t> sum{0};
  ParallelFor(0, kCount, 8, [&sum](int64_t i) { sum.fetch_add(i); });
  EXPECT_EQ(sum.load(), kCount * (kCount - 1) / 2);
}

TEST(ParallelForTest, NestedCallsDegradeToInline) {
  // A parallel region launched from inside a pool worker must run inline
  // (serially) rather than spawn a nested pool.
  std::atomic<int> outer{0};
  std::atomic<int> inner{0};
  ParallelFor(0, 4, 4, [&outer, &inner](int64_t) {
    EXPECT_TRUE(InThreadPoolWorker());
    outer.fetch_add(1);
    const auto worker = std::this_thread::get_id();
    ParallelFor(0, 8, 4, [&inner, worker](int64_t) {
      EXPECT_EQ(std::this_thread::get_id(), worker);
      inner.fetch_add(1);
    });
  });
  EXPECT_EQ(outer.load(), 4);
  EXPECT_EQ(inner.load(), 4 * 8);
}

TEST(ParallelForRangesTest, EmptyRangeReturnsZeroChunks) {
  int calls = 0;
  const int chunks = ParallelForRanges(
      2, 2, 8, [&calls](int64_t, int64_t, int) { ++calls; });
  EXPECT_EQ(chunks, 0);
  EXPECT_EQ(calls, 0);
  EXPECT_EQ(ParallelChunkCount(2, 2, 8), 0);
}

TEST(ParallelForRangesTest, SingleThreadIsOneInlineChunk) {
  int calls = 0;
  int64_t b = -1;
  int64_t e = -1;
  const int chunks = ParallelForRanges(
      10, 50, 1, [&](int64_t chunk_begin, int64_t chunk_end, int chunk) {
        ++calls;
        b = chunk_begin;
        e = chunk_end;
        EXPECT_EQ(chunk, 0);
      });
  EXPECT_EQ(chunks, 1);
  EXPECT_EQ(calls, 1);
  EXPECT_EQ(b, 10);
  EXPECT_EQ(e, 50);
}

TEST(ParallelForRangesTest, ChunksTileTheRangeInOrder) {
  constexpr int64_t kBegin = 7;
  constexpr int64_t kEnd = 107;
  constexpr int kThreads = 6;
  const int expected_chunks = ParallelChunkCount(kBegin, kEnd, kThreads);

  std::mutex mutex;
  std::vector<std::pair<int64_t, int64_t>> ranges(
      static_cast<size_t>(expected_chunks), {-1, -1});
  const int chunks = ParallelForRanges(
      kBegin, kEnd, kThreads,
      [&](int64_t chunk_begin, int64_t chunk_end, int chunk) {
        std::lock_guard<std::mutex> lock(mutex);
        ASSERT_GE(chunk, 0);
        ASSERT_LT(chunk, expected_chunks);
        ranges[static_cast<size_t>(chunk)] = {chunk_begin, chunk_end};
      });
  EXPECT_EQ(chunks, expected_chunks);

  // Consecutive chunks must tile [begin, end) exactly, in index order.
  int64_t next = kBegin;
  for (const auto& [chunk_begin, chunk_end] : ranges) {
    EXPECT_EQ(chunk_begin, next);
    EXPECT_LT(chunk_begin, chunk_end);
    next = chunk_end;
  }
  EXPECT_EQ(next, kEnd);
}

TEST(ParallelForRangesTest, RangeSmallerThanThreadCount) {
  std::vector<std::atomic<int>> visits(2);
  const int chunks = ParallelForRanges(
      0, 2, 16, [&visits](int64_t chunk_begin, int64_t chunk_end, int) {
        for (int64_t i = chunk_begin; i < chunk_end; ++i) {
          visits[static_cast<size_t>(i)].fetch_add(1);
        }
      });
  EXPECT_LE(chunks, 2);
  for (const auto& v : visits) EXPECT_EQ(v.load(), 1);
}

TEST(ParallelForRangesTest, PartitionIsAPureFunctionOfInputs) {
  // Two identical calls must produce the identical partition: this is the
  // property that makes per-chunk accumulators deterministic.
  auto capture = [](int64_t begin, int64_t end, int threads) {
    std::mutex mutex;
    std::vector<std::pair<int64_t, int64_t>> ranges(
        static_cast<size_t>(ParallelChunkCount(begin, end, threads)));
    ParallelForRanges(begin, end, threads,
                      [&](int64_t chunk_begin, int64_t chunk_end, int chunk) {
                        std::lock_guard<std::mutex> lock(mutex);
                        ranges[static_cast<size_t>(chunk)] = {chunk_begin,
                                                              chunk_end};
                      });
    return ranges;
  };
  EXPECT_EQ(capture(0, 1000, 7), capture(0, 1000, 7));
  EXPECT_EQ(capture(13, 999, 5), capture(13, 999, 5));
}

TEST(ParallelForRangesTest, NestedCallsRunAsOneInlineChunk) {
  std::atomic<int> inner_chunks{0};
  ParallelForRanges(0, 8, 4, [&](int64_t, int64_t, int) {
    const int nested = ParallelForRanges(
        0, 100, 8, [](int64_t chunk_begin, int64_t chunk_end, int chunk) {
          EXPECT_EQ(chunk, 0);
          EXPECT_EQ(chunk_begin, 0);
          EXPECT_EQ(chunk_end, 100);
        });
    inner_chunks.fetch_add(nested);
  });
  // Every nested region collapsed to a single inline chunk.
  EXPECT_EQ(inner_chunks.load(), ParallelChunkCount(0, 8, 4));
}

}  // namespace
}  // namespace fedsc
