// Observability subsystem tests: the metrics determinism contract (every
// kDeterministic instrument bit-identical across thread counts on a full
// Fed-SC run), trace well-formedness (every begin has a matching end on
// every thread), the exporters, and the near-zero disabled path.

#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/metrics.h"
#include "common/trace.h"
#include "core/fedsc.h"
#include "data/synthetic.h"
#include "fed/partition.h"

namespace fedsc {
namespace {

// The FedScDeterminismTest federation: 4 subspaces over 6 devices, small
// enough to run three times in this test binary.
Result<FederatedDataset> MakeFederation() {
  SyntheticOptions synth;
  synth.ambient_dim = 24;
  synth.subspace_dim = 3;
  synth.num_subspaces = 4;
  synth.points_per_subspace = 30;
  synth.seed = 31;
  FEDSC_ASSIGN_OR_RETURN(Dataset data, GenerateUnionOfSubspaces(synth));
  PartitionOptions partition;
  partition.num_devices = 6;
  partition.clusters_per_device = 2;
  partition.seed = 31 ^ 0xABCDEF;
  return PartitionAcrossDevices(data, partition);
}

// Flattens the deterministic slices of a snapshot (counters, deterministic
// gauges, histograms — never the execution sections) into a comparable
// string with full double precision.
std::string DeterministicFingerprint(const MetricsSnapshot& snapshot) {
  std::ostringstream os;
  os.precision(17);
  for (const auto& [name, value] : snapshot.counters) {
    os << name << "=" << value << "\n";
  }
  for (const auto& [name, value] : snapshot.gauges) {
    os << name << "=" << value << "\n";
  }
  for (const auto& [name, h] : snapshot.histograms) {
    os << name << ": count=" << h.count << " sum=" << h.sum
       << " min=" << h.min << " max=" << h.max << " buckets=";
    for (const auto& [bits, count] : h.buckets) {
      os << bits << ":" << count << ",";
    }
    os << "\n";
  }
  return os.str();
}

MetricsSnapshot RunFedScWithMetrics(const FederatedDataset& fed,
                                    int num_threads) {
  ResetMetrics();
  EnableMetrics(true);
  FedScOptions options;
  options.num_threads = num_threads;
  auto result = RunFedSc(fed, 4, options);
  EnableMetrics(false);
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  return SnapshotMetrics();
}

// Counts occurrences of `needle` in `haystack` (non-overlapping).
int CountOccurrences(const std::string& haystack, const std::string& needle) {
  int count = 0;
  for (size_t pos = haystack.find(needle); pos != std::string::npos;
       pos = haystack.find(needle, pos + needle.size())) {
    ++count;
  }
  return count;
}

// Structural JSON sanity: braces/brackets balance outside of strings, and
// the scan ends at depth zero. (Full parsing lives in
// scripts/validate_trace.py; this catches broken emission in-process.)
void ExpectBalancedJson(const std::string& json) {
  int depth = 0;
  bool in_string = false;
  bool escaped = false;
  for (char c : json) {
    if (in_string) {
      if (escaped) {
        escaped = false;
      } else if (c == '\\') {
        escaped = true;
      } else if (c == '"') {
        in_string = false;
      }
      continue;
    }
    if (c == '"') {
      in_string = true;
    } else if (c == '{' || c == '[') {
      ++depth;
    } else if (c == '}' || c == ']') {
      --depth;
      ASSERT_GE(depth, 0);
    }
  }
  EXPECT_FALSE(in_string);
  EXPECT_EQ(depth, 0);
}

TEST(MetricsDeterminismTest, CountersBitIdenticalAcrossThreadCounts) {
  auto fed = MakeFederation();
  ASSERT_TRUE(fed.ok()) << fed.status().ToString();

  const MetricsSnapshot serial = RunFedScWithMetrics(*fed, 1);
  const std::string expected = DeterministicFingerprint(serial);

  // Sanity: the run actually exercised the instrumented kernels.
  EXPECT_EQ(serial.counters.at("fedsc.runs"), 1);
  EXPECT_EQ(serial.counters.at("fedsc.devices"), 6);
  EXPECT_GT(serial.counters.at("sc.ssc_admm.solves"), 0);
  EXPECT_GT(serial.counters.at("sc.ssc_admm.iterations"), 0);
  EXPECT_GT(serial.counters.at("linalg.gemm.calls"), 0);
  EXPECT_GT(serial.counters.at("linalg.gemm.flops"), 0);
  EXPECT_GT(serial.counters.at("linalg.svd.calls"), 0);
  EXPECT_GT(serial.counters.at("cluster.kmeans.iterations"), 0);
  EXPECT_GT(serial.counters.at("fed.comm.uplink_bits"), 0);
  EXPECT_EQ(serial.counters.at("fed.comm.rounds"), 1);
  EXPECT_GT(serial.histograms.at("sc.ssc_admm.iterations_per_solve").count, 0);

  for (int threads : {2, 8}) {
    const MetricsSnapshot threaded = RunFedScWithMetrics(*fed, threads);
    EXPECT_EQ(expected, DeterministicFingerprint(threaded))
        << "deterministic metrics diverged at num_threads=" << threads;
  }
}

TEST(MetricsDeterminismTest, ExecutionCountersAreSegregated) {
  auto fed = MakeFederation();
  ASSERT_TRUE(fed.ok());
  const MetricsSnapshot snapshot = RunFedScWithMetrics(*fed, 8);

  // Thread-pool task counts depend on the thread count by nature; they must
  // live in the execution section so the bit-identity check above never
  // sees them.
  EXPECT_TRUE(snapshot.execution_counters.count("threadpool.tasks_scheduled"));
  EXPECT_TRUE(snapshot.execution_counters.count("threadpool.tasks_executed"));
  EXPECT_FALSE(snapshot.counters.count("threadpool.tasks_scheduled"));
  EXPECT_TRUE(snapshot.execution_gauges.count("sc.ssc_admm.last_residual"));
  EXPECT_GT(snapshot.execution_counters.at("threadpool.tasks_scheduled"), 0);
}

TEST(MetricsRegistryTest, DisabledPathRecordsNothing) {
  Counter& counter =
      MetricsRegistry::Global().GetCounter("test.disabled_counter");
  Gauge& gauge = MetricsRegistry::Global().GetGauge("test.disabled_gauge");
  Histogram& histogram =
      MetricsRegistry::Global().GetHistogram("test.disabled_histogram");
  ResetMetrics();
  EnableMetrics(false);

  counter.Add(7);
  gauge.Set(3.5);
  histogram.Record(11);
  EXPECT_EQ(counter.value(), 0);
  EXPECT_EQ(gauge.value(), 0.0);
  EXPECT_EQ(histogram.Snapshot().count, 0);

  EnableMetrics(true);
  counter.Add(7);
  gauge.Set(3.5);
  histogram.Record(11);
  EnableMetrics(false);
  EXPECT_EQ(counter.value(), 7);
  EXPECT_EQ(gauge.value(), 3.5);
  const HistogramSnapshot h = histogram.Snapshot();
  EXPECT_EQ(h.count, 1);
  EXPECT_EQ(h.sum, 11);
  EXPECT_EQ(h.min, 11);
  EXPECT_EQ(h.max, 11);
  ASSERT_EQ(h.buckets.size(), 1u);
  EXPECT_EQ(h.buckets[0].first, 4);  // bit_width(11) == 4
  EXPECT_EQ(h.buckets[0].second, 1);

  ResetMetrics();
  EXPECT_EQ(counter.value(), 0);
  EXPECT_EQ(histogram.Snapshot().count, 0);
}

TEST(MetricsRegistryTest, JsonCarriesPreRegisteredSchema) {
  ResetMetrics();
  const std::string json = MetricsJsonString();
  ExpectBalancedJson(json);
  // Never-touched kernels still appear (as zeros), so downstream dashboards
  // get a stable schema.
  EXPECT_NE(json.find("\"linalg.gemm.calls\""), std::string::npos);
  EXPECT_NE(json.find("\"sc.ssc_admm.iterations\""), std::string::npos);
  EXPECT_NE(json.find("\"threadpool.tasks_scheduled\""), std::string::npos);
  EXPECT_NE(json.find("\"execution_counters\""), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
}

TEST(TraceTest, FullRunIsWellFormedAndExports) {
  auto fed = MakeFederation();
  ASSERT_TRUE(fed.ok());

  EnableTracing(true);
  ResetTrace();
  FedScOptions options;
  options.num_threads = 8;
  auto result = RunFedSc(*fed, 4, options);
  EnableTracing(false);
  ASSERT_TRUE(result.ok()) << result.status().ToString();

  const Status well_formed = CheckTraceWellFormed();
  EXPECT_TRUE(well_formed.ok()) << well_formed.ToString();

  const std::string json = ChromeTraceString();
  ExpectBalancedJson(json);
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"displayTimeUnit\":\"ms\""), std::string::npos);
  EXPECT_NE(json.find("fedsc/run"), std::string::npos);
  EXPECT_NE(json.find("fedsc/phase1/device"), std::string::npos);
  EXPECT_NE(json.find("fedsc/phase2/central"), std::string::npos);
  EXPECT_NE(json.find("sc/ssc_admm"), std::string::npos);
  // Every begin pairs with an end.
  EXPECT_EQ(CountOccurrences(json, "\"ph\":\"B\""),
            CountOccurrences(json, "\"ph\":\"E\""));

  const std::vector<TraceSpanStats> summary = SummarizeTrace();
  ASSERT_FALSE(summary.empty());
  bool saw_device_span = false;
  for (const TraceSpanStats& row : summary) {
    EXPECT_GT(row.count, 0);
    EXPECT_GE(row.total_seconds, 0.0);
    EXPECT_GE(row.max_seconds, 0.0);
    if (row.key.rfind("fedsc/phase1/device", 0) == 0) saw_device_span = true;
  }
  EXPECT_TRUE(saw_device_span);

  std::ostringstream table;
  PrintTraceSummary(table);
  EXPECT_NE(table.str().find("span"), std::string::npos);
  EXPECT_NE(table.str().find("fedsc/run"), std::string::npos);

  ResetTrace();
}

TEST(TraceTest, DisabledMacroSkipsArgumentEvaluation) {
  ResetTrace();
  EnableTracing(false);
  int evaluations = 0;
  auto expensive = [&evaluations]() {
    ++evaluations;
    return int64_t{7};
  };
  {
    FEDSC_TRACE_SPAN("test/disabled", {{"v", expensive()}});
  }
  EXPECT_EQ(evaluations, 0);
  EXPECT_EQ(CountOccurrences(ChromeTraceString(), "test/disabled"), 0);

  EnableTracing(true);
  {
    FEDSC_TRACE_SPAN("test/enabled", {{"v", expensive()}});
  }
  EnableTracing(false);
  EXPECT_EQ(evaluations, 1);
  const Status well_formed = CheckTraceWellFormed();
  EXPECT_TRUE(well_formed.ok()) << well_formed.ToString();
  const std::string json = ChromeTraceString();
  EXPECT_NE(json.find("test/enabled"), std::string::npos);
  EXPECT_NE(json.find("\"v\":7"), std::string::npos);
  ResetTrace();
}

TEST(TraceTest, ArgsRenderEscapedStringsAndDoubles) {
  ResetTrace();
  EnableTracing(true);
  {
    FEDSC_TRACE_SPAN("test/args", {{"s", "quo\"te"}, {"d", 0.5}});
  }
  EnableTracing(false);
  const std::string json = ChromeTraceString();
  ExpectBalancedJson(json);
  EXPECT_NE(json.find("\"s\":\"quo\\\"te\""), std::string::npos);
  EXPECT_NE(json.find("\"d\":0.5"), std::string::npos);
  ResetTrace();
}

}  // namespace
}  // namespace fedsc
