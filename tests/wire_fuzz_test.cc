// Deterministic structure-aware decoder fuzzer for the wire format
// (fed/wire.h) and codec layer (fed/codec.h).
//
// Every iteration derives its own Rng from a fixed seed, takes a valid
// encoded upload, and damages it the way transports do — truncation, bit
// flips in header/payload/CRC, length-field lies, dtype/codec confusion,
// section-count lies, random splices — then decodes. The contract under
// test: DecodeUpload NEVER crashes, never reads out of bounds (this suite
// runs under ASAN in scripts/ci_tsan.sh), and every outcome is a typed
// Status — OK with a well-formed matrix, or kWireCorrupt. Anything else
// (another status code, a crash, a hang) is a decoder bug.
//
// >= 10k structured mutations plus pure-noise buffers, all replayable from
// the fixed kFuzzSeed.

#include <algorithm>
#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "fed/codec.h"
#include "fed/wire.h"
#include "linalg/blas.h"
#include "linalg/matrix.h"

namespace fedsc {
namespace {

constexpr uint64_t kFuzzSeed = 0xF022'FEEDULL;
constexpr int kStructuredIterations = 12000;
constexpr int kRandomBufferIterations = 3000;

Matrix SeedMatrix(int64_t rows, int64_t cols, uint64_t seed) {
  Rng rng(seed);
  Matrix m(rows, cols);
  for (int64_t i = 0; i < m.size(); ++i) {
    m.data()[i] = 2.0 * rng.Uniform() - 1.0;
  }
  return m;
}

// A corpus of valid encodings covering every codec mode, dtype, and a spread
// of shapes (including degenerate ones) so mutations explore every parser
// branch.
std::vector<std::vector<uint8_t>> BuildCorpus() {
  std::vector<std::vector<uint8_t>> corpus;
  const auto push = [&corpus](const Matrix& samples,
                              const CodecOptions& options) {
    auto wire = EncodeUpload(samples, options);
    EXPECT_TRUE(wire.ok()) << wire.status().ToString();
    if (wire.ok()) corpus.push_back(std::move(*wire));
  };
  push(SeedMatrix(8, 5, 1), CodecOptions{});
  push(SeedMatrix(1, 1, 2), CodecOptions{});
  push(SeedMatrix(3, 0, 3), CodecOptions{});
  CodecOptions f32;
  f32.raw_f32 = true;
  push(SeedMatrix(6, 4, 4), f32);
  for (int bits : {2, 8, 32}) {
    CodecOptions quant;
    quant.mode = CodecMode::kUniformQuant;
    quant.quant_bits = bits;
    push(SeedMatrix(7, 3, static_cast<uint64_t>(10 + bits)), quant);
  }
  // Low-rank input so the two-section basis+coeffs path is in the corpus.
  CodecOptions basis;
  basis.mode = CodecMode::kBasisCoeffs;
  const Matrix u = SeedMatrix(16, 2, 20);
  const Matrix c = SeedMatrix(2, 10, 21);
  Matrix low_rank(16, 10);
  Gemm(Trans::kNo, Trans::kNo, 1.0, u, c, 0.0, &low_rank);
  push(low_rank, basis);
  return corpus;
}

// One structure-aware mutation. Mutations target the regions where parser
// bugs live: the magic, the version, the shape/count/length fields, CRCs,
// section headers, and arbitrary payload bytes.
void Mutate(Rng* rng, std::vector<uint8_t>* wire) {
  if (wire->empty()) return;
  const size_t size = wire->size();
  switch (rng->UniformInt(10)) {
    case 0:  // truncate anywhere
      wire->resize(static_cast<size_t>(
          rng->UniformInt(static_cast<int64_t>(size))));
      break;
    case 1: {  // flip one bit anywhere
      const size_t pos = static_cast<size_t>(
          rng->UniformInt(static_cast<int64_t>(size)));
      (*wire)[pos] ^= static_cast<uint8_t>(1u << rng->UniformInt(8));
      break;
    }
    case 2: {  // overwrite one byte in the fixed header
      const size_t span = std::min(size, kWireHeaderBytes);
      (*wire)[static_cast<size_t>(
          rng->UniformInt(static_cast<int64_t>(span)))] =
          static_cast<uint8_t>(rng->UniformInt(256));
      break;
    }
    case 3:  // dtype / codec / quant_bits / num_sections confusion
      if (size > 11) {
        const size_t pos = 8 + static_cast<size_t>(rng->UniformInt(4));
        (*wire)[pos] = static_cast<uint8_t>(rng->UniformInt(256));
      }
      break;
    case 4:  // shape lies: header rows/cols
      if (size > 19) {
        const size_t pos = 12 + static_cast<size_t>(rng->UniformInt(8));
        (*wire)[pos] = static_cast<uint8_t>(rng->UniformInt(256));
      }
      break;
    case 5:  // section length-field lie
      if (size > kWireHeaderBytes + 20) {
        const size_t pos = kWireHeaderBytes + 12 +
                           static_cast<size_t>(rng->UniformInt(8));
        (*wire)[pos] = static_cast<uint8_t>(rng->UniformInt(256));
      }
      break;
    case 6: {  // CRC stomp (header or first section)
      const size_t base =
          (size > kWireHeaderBytes + 24 && rng->UniformInt(2) == 0)
              ? kWireHeaderBytes + 20
              : 32;
      for (size_t i = base; i < std::min(size, base + 4); ++i) {
        (*wire)[i] ^= 0xFF;
      }
      break;
    }
    case 7: {  // append random junk (trailing-byte detection)
      const int64_t extra = 1 + rng->UniformInt(64);
      for (int64_t i = 0; i < extra; ++i) {
        wire->push_back(static_cast<uint8_t>(rng->UniformInt(256)));
      }
      break;
    }
    case 8: {  // duplicate a chunk into a random position (splice)
      const size_t from = static_cast<size_t>(
          rng->UniformInt(static_cast<int64_t>(size)));
      const size_t len = std::min(
          size - from, static_cast<size_t>(1 + rng->UniformInt(32)));
      const size_t to = static_cast<size_t>(
          rng->UniformInt(static_cast<int64_t>(size)));
      const std::vector<uint8_t> chunk(wire->begin() + from,
                                       wire->begin() + from + len);
      wire->insert(wire->begin() + to, chunk.begin(), chunk.end());
      break;
    }
    default: {  // overwrite a random span with noise
      const size_t pos = static_cast<size_t>(
          rng->UniformInt(static_cast<int64_t>(size)));
      const size_t len =
          std::min(size - pos, static_cast<size_t>(1 + rng->UniformInt(16)));
      for (size_t i = 0; i < len; ++i) {
        (*wire)[pos + i] = static_cast<uint8_t>(rng->UniformInt(256));
      }
      break;
    }
  }
}

// Returns true when the decode outcome honored the typed-Status contract.
bool TypedOutcome(const Result<DecodedUpload>& decoded, int64_t* ok_count,
                  int64_t* corrupt_count) {
  if (decoded.ok()) {
    // A message that still parses must carry a coherent matrix.
    const Matrix& m = decoded->samples;
    if (m.rows() < 0 || m.cols() < 0) return false;
    ++*ok_count;
    return true;
  }
  if (decoded.status().code() == StatusCode::kWireCorrupt) {
    ++*corrupt_count;
    return true;
  }
  return false;
}

TEST(WireFuzzTest, StructuredMutationsAlwaysYieldTypedStatus) {
  const std::vector<std::vector<uint8_t>> corpus = BuildCorpus();
  ASSERT_FALSE(corpus.empty());
  int64_t ok_count = 0;
  int64_t corrupt_count = 0;
  for (int iter = 0; iter < kStructuredIterations; ++iter) {
    Rng rng(MixSeeds(kFuzzSeed, static_cast<uint64_t>(iter)));
    std::vector<uint8_t> wire =
        corpus[static_cast<size_t>(rng.UniformInt(
            static_cast<int64_t>(corpus.size())))];
    const int64_t mutations = 1 + rng.UniformInt(3);
    for (int64_t m = 0; m < mutations; ++m) Mutate(&rng, &wire);
    const auto decoded = DecodeUpload(wire);
    ASSERT_TRUE(TypedOutcome(decoded, &ok_count, &corrupt_count))
        << "iteration " << iter << " produced non-typed outcome: "
        << decoded.status().ToString();
  }
  // The mutator must actually be corrupting things (and a few mutations —
  // e.g. a flipped payload bit whose section CRC is then stomped to match
  // nothing — may cancel out; surviving is fine, crashing is not).
  EXPECT_GT(corrupt_count, kStructuredIterations / 2);
  RecordProperty("decoded_ok", static_cast<int>(ok_count));
  RecordProperty("rejected_corrupt", static_cast<int>(corrupt_count));
}

TEST(WireFuzzTest, PureNoiseBuffersNeverCrashTheDecoder) {
  int64_t ok_count = 0;
  int64_t corrupt_count = 0;
  for (int iter = 0; iter < kRandomBufferIterations; ++iter) {
    Rng rng(MixSeeds(kFuzzSeed ^ 0xD15EA5EULL,
                     static_cast<uint64_t>(iter)));
    std::vector<uint8_t> noise(
        static_cast<size_t>(rng.UniformInt(512)));
    for (auto& b : noise) b = static_cast<uint8_t>(rng.UniformInt(256));
    // Sometimes graft a valid magic/version prefix so parsing gets past the
    // first checks into the interesting code.
    if (!noise.empty() && rng.UniformInt(2) == 0) {
      noise[0] = 'F';
      if (noise.size() > 1) noise[1] = 'S';
      if (noise.size() > 2) noise[2] = 'C';
      if (noise.size() > 3) noise[3] = 'W';
      if (noise.size() > 5) {
        noise[4] = 1;
        noise[5] = 0;
      }
    }
    const auto decoded = DecodeUpload(noise);
    ASSERT_TRUE(TypedOutcome(decoded, &ok_count, &corrupt_count))
        << "iteration " << iter << ": " << decoded.status().ToString();
  }
  // Random bytes essentially never form a CRC-consistent message.
  EXPECT_EQ(ok_count, 0);
  EXPECT_EQ(corrupt_count, kRandomBufferIterations);
}

TEST(WireFuzzTest, NullAndEmptyInputs) {
  int64_t ok_count = 0;
  int64_t corrupt_count = 0;
  EXPECT_TRUE(TypedOutcome(DecodeUpload(nullptr, 0), &ok_count,
                           &corrupt_count));
  EXPECT_TRUE(TypedOutcome(DecodeUpload(std::vector<uint8_t>{}), &ok_count,
                           &corrupt_count));
  const std::vector<uint8_t> magic_only = {'F', 'S', 'C', 'W'};
  EXPECT_TRUE(TypedOutcome(DecodeUpload(magic_only), &ok_count,
                           &corrupt_count));
  EXPECT_EQ(ok_count, 0);
  EXPECT_EQ(corrupt_count, 3);
}

}  // namespace
}  // namespace fedsc
