// fedsc_cli: run the complete one-shot federated subspace clustering
// pipeline on a CSV dataset from the command line.
//
//   fedsc_cli --input data.csv --clusters 8 --devices 40 ...
//             [--clusters-per-device 2] [--clusters-per-device-max 0] ...
//             [--central ssc|tsc|exact|sketch|auto] [--noise 0.0] ...
//             [--sketch-dim 0] [--landmarks jl|uniform|leverage] ...
//             [--threads 1] ...
//             [--fixed-r N] [--sample-dim 0] [--trim 0.0] ...
//             [--quantize-bits 0] [--seed 42] [--output labels.csv] ...
//             [--dropout 0.0] [--straggler 0.0] [--transient 0.0] ...
//             [--corrupt 0.0] [--byzantine 0.0] [--wire-corrupt 0.0] ...
//             [--byzantine-mode random|collude|mimic] [--fault-seed S] ...
//             [--defense on|off] [--defense-trim 0.1] ...
//             [--quorum 1.0] [--max-attempts 1] [--timeout-ms 1000] ...
//             [--codec raw|quant|basis] [--wire-dump msg.wire] ...
//             [--trace-out trace.json] [--metrics-out metrics.json]
//
// Flags accept both "--flag value" and "--flag=value". The input format is
// LoadDatasetCsv's: label,feature_1,...,feature_n per line. Ground-truth
// labels (the first column) are used only for the reported ACC/NMI; pass
// zeros if you have none. With --output, the predicted label of every point
// is written one per line, in input order.
//
// The fault flags drive the deterministic failure model (fed/faults.h):
// --dropout/--straggler/--transient/--corrupt/--byzantine are per-device
// fault probabilities, --max-attempts and --timeout-ms bound the retrying
// uplink, and --quorum is the participation fraction required for the round
// to proceed. Points on failed devices are reported with label -1 (excluded
// from ACC/NMI; written as -1 to --output). --byzantine-mode picks the
// attack strategy (random unit vectors, a colluding common subspace, or
// subspace mimicry); --defense on enables the Byzantine screening +
// robust central k-engine (fed/defense.h), and --defense-trim overrides its
// trimmed-assignment fraction. Screened devices are reported like
// quarantined ones, with the triggering statistic.
//
// --codec picks the uplink serialization (fed/codec.h): raw ships f64
// samples verbatim, quant packs them at --quantize-bits bits per value
// (default 8), basis ships a subspace basis plus coefficients when that is
// smaller. Every upload actually crosses the versioned wire format, so the
// reported comm figures are true serialized byte counts. --wire-dump writes
// the first transmitted wire message to a file for offline inspection;
// --wire-corrupt is the per-device probability of in-flight byte damage
// (detected by CRC and quarantined).
//
// --central takes both vocabularies: ssc|tsc picks the Phase-2 clustering
// method, and exact|sketch|auto picks the central engine (sc/pipeline.h
// CentralPath) — pass the flag twice to set both, e.g.
// "--central tsc --central sketch". auto (the default) switches to the
// sketched dictionary + landmark spectral path at kSketchedCutoffN pooled
// samples. --sketch-dim overrides the sketch width d (0 = shape rule);
// --landmarks picks the dictionary construction: jl (random-sign
// projection), uniform (uniform column landmarks, default) or leverage
// (ridge leverage-score landmarks).
//
// --trace-out records scoped spans across the run and writes Chrome
// trace-event JSON (open in chrome://tracing or https://ui.perfetto.dev),
// plus an aggregate span table on stdout. --metrics-out writes the kernel
// metrics registry (ADMM iterations, Jacobi sweeps, GEMM flops, comm bits,
// ...) as flat JSON, with p50/p90/p99 estimates on every histogram.
//
// --report-out writes the full RunReport (core/report.h): provenance
// manifest, per-device journal on the simulated clock, span/roofline
// profile, and the metrics snapshot, in one schema-versioned JSON document.
// --journal-out writes the event journal alone as JSONL. Render a report
// with scripts/render_report.py; validate with scripts/validate_report.py.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "common/isa.h"
#include "common/journal.h"
#include "common/metrics.h"
#include "common/trace.h"
#include "core/fedsc.h"
#include "core/report.h"
#include "data/io.h"
#include "fed/partition.h"
#include "metrics/clustering_metrics.h"

namespace {

struct CliOptions {
  std::string input;
  std::string output;
  int64_t clusters = 0;
  int64_t devices = 0;
  int64_t clusters_per_device = 0;
  int64_t clusters_per_device_max = 0;
  std::string central = "ssc";
  std::string central_path = "auto";
  int64_t sketch_dim = 0;
  std::string landmarks = "uniform";
  double noise = 0.0;
  int threads = 1;
  int64_t fixed_r = 0;
  int64_t sample_dim = 0;
  double trim = 0.0;
  int quantize_bits = 0;
  uint64_t seed = 42;
  double dropout = 0.0;
  double straggler = 0.0;
  double transient = 0.0;
  double corrupt = 0.0;
  double byzantine = 0.0;
  std::string byzantine_mode = "random";
  double wire_corrupt = 0.0;
  uint64_t fault_seed = 0x5eed'FA17ULL;
  std::string defense = "off";
  double defense_trim = -1.0;  // < 0: keep the DefenseOptions default
  std::string codec = "raw";
  std::string wire_dump;
  double quorum = 1.0;
  int max_attempts = 1;
  int64_t timeout_ms = 1000;
  std::string trace_out;
  std::string metrics_out;
  std::string report_out;
  std::string journal_out;
};

void PrintUsage(const char* binary) {
  std::fprintf(
      stderr,
      "usage: %s --input data.csv --clusters L --devices Z\n"
      "  [--clusters-per-device L'] [--clusters-per-device-max M]\n"
      "  [--central ssc|tsc|exact|sketch|auto] [--noise delta]\n"
      "  [--sketch-dim d] [--landmarks jl|uniform|leverage] [--threads T]\n"
      "  [--fixed-r R] [--sample-dim D] [--trim F]\n"
      "  [--quantize-bits B] [--seed S] [--output labels.csv]\n"
      "  [--dropout P] [--straggler P] [--transient P]\n"
      "  [--corrupt P] [--byzantine P] [--wire-corrupt P] [--fault-seed S]\n"
      "  [--byzantine-mode random|collude|mimic]\n"
      "  [--defense on|off] [--defense-trim F]\n"
      "  [--quorum F] [--max-attempts A] [--timeout-ms T]\n"
      "  [--codec raw|quant|basis] [--wire-dump msg.wire]\n"
      "  [--trace-out trace.json] [--metrics-out metrics.json]\n"
      "  [--report-out report.json] [--journal-out journal.jsonl]\n"
      "  [--print-isa]\n",
      binary);
}

bool ParseArgs(int argc, char** argv, CliOptions* options) {
  for (int i = 1; i < argc; ++i) {
    std::string flag = argv[i];
    // "--flag=value" splits into the flag and an inline value that next()
    // hands back instead of consuming argv[i + 1].
    std::string inline_value;
    bool has_inline = false;
    if (flag.rfind("--", 0) == 0) {
      const size_t eq = flag.find('=');
      if (eq != std::string::npos) {
        inline_value = flag.substr(eq + 1);
        flag.resize(eq);
        has_inline = true;
      }
    }
    auto next = [&]() -> const char* {
      if (has_inline) return inline_value.c_str();
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", flag.c_str());
        return nullptr;
      }
      return argv[++i];
    };
    const char* value = nullptr;
    if (flag == "--input") {
      if ((value = next()) == nullptr) return false;
      options->input = value;
    } else if (flag == "--output") {
      if ((value = next()) == nullptr) return false;
      options->output = value;
    } else if (flag == "--clusters") {
      if ((value = next()) == nullptr) return false;
      options->clusters = std::atoll(value);
    } else if (flag == "--devices") {
      if ((value = next()) == nullptr) return false;
      options->devices = std::atoll(value);
    } else if (flag == "--clusters-per-device") {
      if ((value = next()) == nullptr) return false;
      options->clusters_per_device = std::atoll(value);
    } else if (flag == "--clusters-per-device-max") {
      if ((value = next()) == nullptr) return false;
      options->clusters_per_device_max = std::atoll(value);
    } else if (flag == "--central") {
      if ((value = next()) == nullptr) return false;
      // One flag, two vocabularies: ssc|tsc is the Phase-2 method,
      // everything else is the engine path (validated below).
      if (std::string(value) == "ssc" || std::string(value) == "tsc") {
        options->central = value;
      } else {
        options->central_path = value;
      }
    } else if (flag == "--sketch-dim") {
      if ((value = next()) == nullptr) return false;
      options->sketch_dim = std::atoll(value);
    } else if (flag == "--landmarks") {
      if ((value = next()) == nullptr) return false;
      options->landmarks = value;
    } else if (flag == "--noise") {
      if ((value = next()) == nullptr) return false;
      options->noise = std::atof(value);
    } else if (flag == "--threads") {
      if ((value = next()) == nullptr) return false;
      options->threads = std::atoi(value);
    } else if (flag == "--fixed-r") {
      if ((value = next()) == nullptr) return false;
      options->fixed_r = std::atoll(value);
    } else if (flag == "--sample-dim") {
      if ((value = next()) == nullptr) return false;
      options->sample_dim = std::atoll(value);
    } else if (flag == "--trim") {
      if ((value = next()) == nullptr) return false;
      options->trim = std::atof(value);
    } else if (flag == "--quantize-bits") {
      if ((value = next()) == nullptr) return false;
      options->quantize_bits = std::atoi(value);
    } else if (flag == "--seed") {
      if ((value = next()) == nullptr) return false;
      options->seed = static_cast<uint64_t>(std::atoll(value));
    } else if (flag == "--dropout") {
      if ((value = next()) == nullptr) return false;
      options->dropout = std::atof(value);
    } else if (flag == "--straggler") {
      if ((value = next()) == nullptr) return false;
      options->straggler = std::atof(value);
    } else if (flag == "--transient") {
      if ((value = next()) == nullptr) return false;
      options->transient = std::atof(value);
    } else if (flag == "--corrupt") {
      if ((value = next()) == nullptr) return false;
      options->corrupt = std::atof(value);
    } else if (flag == "--byzantine") {
      if ((value = next()) == nullptr) return false;
      options->byzantine = std::atof(value);
    } else if (flag == "--byzantine-mode") {
      if ((value = next()) == nullptr) return false;
      options->byzantine_mode = value;
    } else if (flag == "--defense") {
      if ((value = next()) == nullptr) return false;
      options->defense = value;
    } else if (flag == "--defense-trim") {
      if ((value = next()) == nullptr) return false;
      options->defense_trim = std::atof(value);
    } else if (flag == "--wire-corrupt") {
      if ((value = next()) == nullptr) return false;
      options->wire_corrupt = std::atof(value);
    } else if (flag == "--codec") {
      if ((value = next()) == nullptr) return false;
      options->codec = value;
    } else if (flag == "--wire-dump") {
      if ((value = next()) == nullptr) return false;
      options->wire_dump = value;
    } else if (flag == "--fault-seed") {
      if ((value = next()) == nullptr) return false;
      options->fault_seed = static_cast<uint64_t>(std::atoll(value));
    } else if (flag == "--quorum") {
      if ((value = next()) == nullptr) return false;
      options->quorum = std::atof(value);
    } else if (flag == "--max-attempts") {
      if ((value = next()) == nullptr) return false;
      options->max_attempts = std::atoi(value);
    } else if (flag == "--timeout-ms") {
      if ((value = next()) == nullptr) return false;
      options->timeout_ms = std::atoll(value);
    } else if (flag == "--trace-out") {
      if ((value = next()) == nullptr) return false;
      options->trace_out = value;
    } else if (flag == "--metrics-out") {
      if ((value = next()) == nullptr) return false;
      options->metrics_out = value;
    } else if (flag == "--report-out") {
      if ((value = next()) == nullptr) return false;
      options->report_out = value;
    } else if (flag == "--journal-out") {
      if ((value = next()) == nullptr) return false;
      options->journal_out = value;
    } else if (flag == "--help" || flag == "-h") {
      return false;
    } else {
      std::fprintf(stderr,
                   "invalid argument: unknown flag %s (see --help for the "
                   "accepted flags)\n",
                   flag.c_str());
      return false;
    }
  }
  if (options->input.empty() || options->clusters < 1 ||
      options->devices < 1) {
    std::fprintf(stderr,
                 "--input, --clusters and --devices are required\n");
    return false;
  }
  if (options->central_path != "auto" && options->central_path != "exact" &&
      options->central_path != "sketch") {
    std::fprintf(stderr,
                 "--central must be 'ssc', 'tsc', 'exact', 'sketch' or "
                 "'auto', got '%s'\n",
                 options->central_path.c_str());
    return false;
  }
  if (options->landmarks != "jl" && options->landmarks != "uniform" &&
      options->landmarks != "leverage") {
    std::fprintf(stderr,
                 "--landmarks must be 'jl', 'uniform' or 'leverage', got "
                 "'%s'\n",
                 options->landmarks.c_str());
    return false;
  }
  if (options->codec != "raw" && options->codec != "quant" &&
      options->codec != "basis") {
    std::fprintf(stderr, "--codec must be 'raw', 'quant' or 'basis'\n");
    return false;
  }
  if (options->byzantine_mode != "random" &&
      options->byzantine_mode != "collude" &&
      options->byzantine_mode != "mimic") {
    std::fprintf(stderr,
                 "invalid argument: --byzantine-mode must be 'random', "
                 "'collude' or 'mimic', got '%s'\n",
                 options->byzantine_mode.c_str());
    return false;
  }
  if (options->defense != "on" && options->defense != "off") {
    std::fprintf(stderr,
                 "invalid argument: --defense must be 'on' or 'off', got "
                 "'%s'\n",
                 options->defense.c_str());
    return false;
  }
  if (options->defense_trim >= 0.0 &&
      !(options->defense_trim <= 0.5)) {
    std::fprintf(stderr,
                 "invalid argument: --defense-trim must lie in [0, 0.5], "
                 "got %g\n",
                 options->defense_trim);
    return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace fedsc;
  // --print-isa: report the micro-kernel dispatch (common/isa.h) and exit.
  // Resolution honors FEDSC_FORCE_ISA, so forcing an unsupported tier makes
  // this abort non-zero — scripts/run_all.sh uses that as its "can this
  // host run the forced tier?" probe.
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--print-isa") == 0) {
      const IsaDispatch& dispatch = ResolveDefaultIsa();
      std::printf("cpu_isa %s\ngemm_isa %s\nisa_pin_source %s\n",
                  CpuIsaName(BestSupportedIsa()), CpuIsaName(dispatch.chosen),
                  dispatch.pin_source);
      return 0;
    }
  }
  CliOptions cli;
  if (!ParseArgs(argc, argv, &cli)) {
    PrintUsage(argv[0]);
    return 2;
  }

  auto data = LoadDatasetCsv(cli.input);
  if (!data.ok()) {
    std::fprintf(stderr, "loading %s failed: %s\n", cli.input.c_str(),
                 data.status().ToString().c_str());
    return 1;
  }
  std::printf("loaded %lld points of dimension %lld (%lld ground-truth "
              "classes)\n",
              static_cast<long long>(data->points.cols()),
              static_cast<long long>(data->points.rows()),
              static_cast<long long>(data->num_clusters));

  PartitionOptions partition;
  partition.num_devices = cli.devices;
  partition.clusters_per_device = cli.clusters_per_device;
  partition.clusters_per_device_max = cli.clusters_per_device_max;
  partition.seed = cli.seed ^ 0x9E3779B97F4A7C15ULL;
  auto fed = PartitionAcrossDevices(*data, partition);
  if (!fed.ok()) {
    std::fprintf(stderr, "partition failed: %s\n",
                 fed.status().ToString().c_str());
    return 1;
  }

  FedScOptions options;
  options.central_method =
      cli.central == "tsc" ? ScMethod::kTsc : ScMethod::kSsc;
  options.central = cli.central_path == "exact"
                        ? CentralPath::kExact
                        : cli.central_path == "sketch"
                              ? CentralPath::kSketched
                              : CentralPath::kAuto;
  options.central_sketch.dim = cli.sketch_dim;
  options.central_sketch.kind =
      cli.landmarks == "jl"
          ? SketchKind::kJl
          : cli.landmarks == "leverage" ? SketchKind::kLeverageLandmarks
                                        : SketchKind::kUniformLandmarks;
  options.channel.noise_delta = cli.noise;
  if (cli.quantize_bits > 0) {
    options.channel.quantize = true;
    options.channel.bits_per_value = cli.quantize_bits;
  }
  if (cli.codec == "quant") {
    options.channel.codec.mode = CodecMode::kUniformQuant;
    if (cli.quantize_bits > 0) {
      options.channel.codec.quant_bits = cli.quantize_bits;
    }
  } else if (cli.codec == "basis") {
    options.channel.codec.mode = CodecMode::kBasisCoeffs;
  }
  // --wire-dump: capture the first transmitted uplink message.
  std::vector<uint8_t> first_wire;
  if (!cli.wire_dump.empty()) {
    options.channel.wire_sink = [&first_wire](
                                    int64_t, const std::vector<uint8_t>& w) {
      if (first_wire.empty()) first_wire = w;
    };
  }
  options.num_threads = cli.threads;
  if (cli.fixed_r > 0) {
    options.use_eigengap = false;
    options.max_local_clusters = cli.fixed_r;
  }
  options.sample_dim = cli.sample_dim;
  options.trim_fraction = cli.trim;
  options.seed = cli.seed;
  options.faults.dropout_rate = cli.dropout;
  options.faults.straggler_rate = cli.straggler;
  options.faults.transient_rate = cli.transient;
  options.faults.corrupt_rate = cli.corrupt;
  options.faults.byzantine_rate = cli.byzantine;
  options.faults.byzantine_mode =
      cli.byzantine_mode == "collude"
          ? ByzantineMode::kCollude
          : cli.byzantine_mode == "mimic" ? ByzantineMode::kMimic
                                          : ByzantineMode::kRandom;
  options.faults.wire_corrupt_rate = cli.wire_corrupt;
  options.faults.seed = cli.fault_seed;
  options.defense.enabled = cli.defense == "on";
  if (cli.defense_trim >= 0.0) {
    options.defense.trim_fraction = cli.defense_trim;
  }
  options.quorum = cli.quorum;
  options.retry.max_attempts = cli.max_attempts;
  options.retry.timeout_ms = cli.timeout_ms;

  // A report needs every surface: spans for the profile, metrics for the
  // roofline join and the snapshot, the journal for the event ledger. The
  // report itself is built at output time (below), once every span has
  // closed, rather than via FedScOptions::collect_report.
  const bool want_report = !cli.report_out.empty();
  if (!cli.trace_out.empty() || want_report) EnableTracing(true);
  if (!cli.metrics_out.empty() || want_report) EnableMetrics(true);
  if (!cli.journal_out.empty() || want_report) EnableJournal(true);

  auto result = RunFedSc(*fed, cli.clusters, options);
  if (!result.ok()) {
    std::fprintf(stderr, "Fed-SC failed: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }

  // Points on failed devices carry the sentinel label; quality metrics are
  // computed over the covered subset only.
  std::vector<int64_t> covered_truth;
  std::vector<int64_t> covered_pred;
  for (size_t i = 0; i < result->global_labels.size(); ++i) {
    if (result->global_labels[i] == FedScResult::kFailedDeviceLabel) continue;
    covered_truth.push_back(data->labels[i]);
    covered_pred.push_back(result->global_labels[i]);
  }
  if (covered_truth.empty()) {
    std::fprintf(stderr, "no device delivered a usable upload\n");
    return 1;
  }
  std::printf("ACC  %.2f%%", ClusteringAccuracy(covered_truth, covered_pred));
  if (covered_truth.size() < result->global_labels.size()) {
    std::printf("  (over %zu of %zu covered points)", covered_truth.size(),
                result->global_labels.size());
  }
  std::printf("\n");
  std::printf("NMI  %.2f%%\n",
              NormalizedMutualInformation(covered_truth, covered_pred));
  std::printf("time %.3fs (local sum) + %.3fs (server); %lld round%s\n",
              result->local_seconds, result->central_seconds,
              static_cast<long long>(result->comm.rounds),
              result->comm.rounds == 1 ? "" : "s");
  std::printf("comm %.1f kb up (%lld wire bytes, %s codec) / %.2f kb down "
              "(%lld samples)\n",
              static_cast<double>(result->comm.uplink_bits) / 1000.0,
              static_cast<long long>(result->comm.uplink_wire_bytes),
              cli.codec.c_str(), result->comm.downlink_bits / 1000.0,
              static_cast<long long>(result->total_samples));
  if (!result->failed_devices.empty() || result->comm.retries > 0 ||
      result->quarantined_samples > 0) {
    std::printf("degraded round: %lld/%lld devices participated, "
                "%lld samples quarantined, %lld devices screened, "
                "%lld retries, %lld timeouts, %lld ms simulated uplink\n",
                static_cast<long long>(result->participating_devices),
                static_cast<long long>(fed->num_devices()),
                static_cast<long long>(result->quarantined_samples),
                static_cast<long long>(result->screened_devices),
                static_cast<long long>(result->comm.retries),
                static_cast<long long>(result->comm.timeouts),
                static_cast<long long>(result->comm.sim_uplink_ms));
    for (const DeviceReport& report : result->device_reports) {
      if (report.outcome == DeviceOutcome::kOk) continue;
      if (report.outcome == DeviceOutcome::kScreened) {
        std::printf("  device %lld: screened by the defense (%s)\n",
                    static_cast<long long>(report.device),
                    report.screen_statistic.c_str());
        continue;
      }
      std::printf("  device %lld: %s after %d attempt%s (%s)\n",
                  static_cast<long long>(report.device),
                  DeviceOutcomeName(report.outcome), report.attempts,
                  report.attempts == 1 ? "" : "s",
                  report.status.ToString().c_str());
    }
  }

  if (!cli.wire_dump.empty()) {
    if (first_wire.empty()) {
      std::fprintf(stderr, "no uplink message transmitted; nothing to dump\n");
    } else {
      std::ofstream out(cli.wire_dump, std::ios::binary);
      if (!out) {
        std::fprintf(stderr, "cannot open %s\n", cli.wire_dump.c_str());
        return 1;
      }
      out.write(reinterpret_cast<const char*>(first_wire.data()),
                static_cast<std::streamsize>(first_wire.size()));
      std::printf("wrote first uplink wire message (%zu bytes) to %s\n",
                  first_wire.size(), cli.wire_dump.c_str());
    }
  }
  // Fail loudly, with the typed status, before writing a silently-broken
  // trace or a report whose profile section was built from malformed spans.
  if (!cli.trace_out.empty() || want_report) {
    const Status well_formed = CheckTraceWellFormed();
    if (!well_formed.ok()) {
      std::fprintf(stderr, "trace is malformed; refusing to write %s: %s\n",
                   !cli.trace_out.empty() ? cli.trace_out.c_str()
                                          : cli.report_out.c_str(),
                   well_formed.ToString().c_str());
      return 1;
    }
  }
  if (!cli.trace_out.empty()) {
    const Status written = WriteChromeTraceFile(cli.trace_out);
    if (!written.ok()) {
      std::fprintf(stderr, "writing trace failed: %s\n",
                   written.ToString().c_str());
      return 1;
    }
    std::printf("wrote Chrome trace to %s (open in chrome://tracing or "
                "ui.perfetto.dev)\n",
                cli.trace_out.c_str());
    PrintTraceSummary(std::cout);
  }
  if (!cli.metrics_out.empty()) {
    const Status written = WriteMetricsJsonFile(cli.metrics_out);
    if (!written.ok()) {
      std::fprintf(stderr, "writing metrics failed: %s\n",
                   written.ToString().c_str());
      return 1;
    }
    std::printf("wrote metrics to %s\n", cli.metrics_out.c_str());
  }
  if (!cli.journal_out.empty()) {
    const Status written = WriteJournalJsonlFile(cli.journal_out);
    if (!written.ok()) {
      std::fprintf(stderr, "writing journal failed: %s\n",
                   written.ToString().c_str());
      return 1;
    }
    std::printf("wrote run journal to %s\n", cli.journal_out.c_str());
  }
  if (want_report) {
    const RunReport report = BuildRunReport(options, *result);
    const Status written = WriteRunReportJsonFile(report, cli.report_out);
    if (!written.ok()) {
      std::fprintf(stderr, "writing report failed: %s\n",
                   written.ToString().c_str());
      return 1;
    }
    std::printf("wrote run report to %s (render with "
                "scripts/render_report.py)\n",
                cli.report_out.c_str());
  }

  if (!cli.output.empty()) {
    std::ofstream out(cli.output);
    if (!out) {
      std::fprintf(stderr, "cannot open %s\n", cli.output.c_str());
      return 1;
    }
    for (int64_t label : result->global_labels) out << label << '\n';
    std::printf("wrote %zu labels to %s\n", result->global_labels.size(),
                cli.output.c_str());
  }
  return 0;
}
